"""Multi-process serving: a parent router over N worker daemons.

One worker process per ``--workers`` slot, each running a
:class:`~repro.serve.shard.ShardRouter` restricted to the shard subset
``{i : i mod W == w}`` with per-shard WALs under
``data_dir/shard-<i>``.  The parent :class:`WorkerSupervisor`
duck-types the same transport surface as :class:`TrustedServer` and
:class:`ShardRouter`, so clients connect to one address and never see
the fleet behind it.

**The crash-safety contract** (the reason this module exists at all):

* the parent stamps every state-mutating frame with the owning shard's
  next ``seq`` *before* forwarding, and keeps the frame in a per-shard
  pending map until the worker's reply arrives;
* a worker WAL-appends the op before executing it, so after a SIGKILL
  the respawned worker replays its log and rebuilds byte-equivalent
  state (:meth:`ShardRuntime.fingerprint`), announcing the highest seq
  it applied;
* on respawn the parent re-sends everything still pending for that
  worker's shards, in seq order.  Ops the WAL caught before the kill
  are answered from the worker's replayed reply cache; the rest
  execute for the first time.  Either way each decision happens
  exactly once and per-user FIFO order holds — ``loadgen --verify``
  passes across a mid-pass worker kill.

Worker processes announce themselves with one JSON line on stdout::

    {"repro_worker": <w>, "port": <p>, "applied": {"<shard>": <seq>}}

``applied`` seeds the parent's seq counters at ``applied + 1``, which
also makes *parent* restarts safe: the counters resume exactly where
the fleet's logs ended.
"""

from __future__ import annotations

import asyncio
import json
import sys
import time
from pathlib import Path
from typing import Sequence

from repro.obs.config import Telemetry, TelemetryConfig, resolve_telemetry
from repro.serve.client import ServeClient, ServeClientError
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    DrainReply,
    DrainRequest,
    ErrorReply,
    Frame,
    HealthReply,
    HealthRequest,
    Hello,
    LocationUpdate,
    MetricsRequest,
    ProfileRequest,
    ServiceRequest,
    StatsReply,
    StatsRequest,
    TracesReply,
    TracesRequest,
    Welcome,
)
from repro.serve.server import ClientSession, ServeConfig
from repro.serve.shard import shard_of

#: How long to wait for a worker's announcement line before giving up.
ANNOUNCE_TIMEOUT_S = 60.0


def worker_shards(worker: int, workers: int, shards: int) -> list[int]:
    """The shard subset one worker serves."""
    return [i for i in range(shards) if i % workers == worker]


def announce(worker: int, port: int, applied: dict[int, int]) -> str:
    """The one-line stdout handshake a worker prints when ready."""
    return json.dumps(
        {
            "repro_worker": worker,
            "port": port,
            "applied": {str(k): v for k, v in applied.items()},
        },
        separators=(",", ":"),
    )


class _Pending:
    """One stamped, forwarded, not-yet-acknowledged operation."""

    __slots__ = ("frame", "future", "client_id")

    def __init__(
        self,
        frame: Frame,
        future: "asyncio.Future[Frame]",
        client_id: int,
    ) -> None:
        #: The forwarded frame — seq stamped, id remapped to a
        #: supervisor-unique value (client ids collide across sessions).
        self.frame = frame
        self.future = future
        #: The id the client sent, restored onto the reply.
        self.client_id = client_id


def _clone_with(frame: Frame, **fields: object) -> Frame:
    clone = object.__new__(type(frame))
    clone.__dict__.update(frame.__dict__)
    clone.__dict__.update(fields)
    return clone


class _Worker:
    """One worker slot: process handle, connection, and its shards."""

    def __init__(self, index: int, shards: "list[int]") -> None:
        self.index = index
        self.shards = shards
        self.process: "asyncio.subprocess.Process | None" = None
        self.client: ServeClient | None = None
        self.port: int | None = None
        self.respawns = 0
        self.ready = asyncio.Event()


class WorkerSupervisor:
    """Parent frontend over ``workers`` shard-worker processes.

    Duck-types the transport server surface (``config``, ``telemetry``,
    ``open_session`` …), so :class:`~repro.serve.transports.
    TcpTransport` and ``run_loadgen(server=...)`` drive it unchanged.
    """

    def __init__(
        self,
        workers: int,
        shards: int,
        data_dir: "str | Path",
        config: ServeConfig | None = None,
        telemetry: "Telemetry | TelemetryConfig | None" = None,
        worker_args: "Sequence[str]" = (),
        python: str | None = None,
        daemon_path: "str | Path | None" = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if shards < workers:
            raise ValueError(
                f"shards ({shards}) must be >= workers ({workers}); "
                "every worker needs at least one shard"
            )
        self.n_workers = workers
        self.n_shards = shards
        self.data_dir = Path(data_dir)
        self.config = config or ServeConfig()
        self.telemetry = resolve_telemetry(telemetry)
        self.worker_args = list(worker_args)
        self.python = python or sys.executable
        self.daemon_path = Path(
            daemon_path
            if daemon_path is not None
            else Path(__file__).resolve().parents[3]
            / "tools"
            / "serve_daemon.py"
        )
        self.workers = [
            _Worker(w, worker_shards(w, workers, shards))
            for w in range(workers)
        ]
        self._owner = {
            shard: worker
            for worker in self.workers
            for shard in worker.shards
        }
        self.next_seq: dict[int, int] = {
            shard: 0 for shard in range(shards)
        }
        self.pending: "dict[int, dict[int, _Pending]]" = {
            shard: {} for shard in range(shards)
        }
        self._loops: "list[asyncio.Task[None]]" = []
        self._sessions: dict[str, ClientSession] = {}
        self._session_seq = 0
        self._next_out_id = 0
        self._draining = False
        self._closed = False
        self.protocol_errors = 0
        self.started_at = time.monotonic()

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> "WorkerSupervisor":
        if self._closed:
            raise RuntimeError("supervisor is closed")
        if not self._loops:
            self._loops = [
                asyncio.create_task(
                    self._worker_loop(worker),
                    name=f"repro-worker-{worker.index}",
                )
                for worker in self.workers
            ]
            await asyncio.gather(
                *(worker.ready.wait() for worker in self.workers)
            )
        return self

    async def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for task in self._loops:
            task.cancel()
        for task in self._loops:
            try:
                await task
            except asyncio.CancelledError:
                pass
        for worker in self.workers:
            if worker.client is not None:
                try:
                    await worker.client.drain()
                except (ServeClientError, ConnectionError, OSError):
                    pass
                await worker.client.close()
            if worker.process is not None:
                if worker.process.returncode is None:
                    worker.process.terminate()
                try:
                    await asyncio.wait_for(worker.process.wait(), 10.0)
                except asyncio.TimeoutError:
                    worker.process.kill()
                    await worker.process.wait()

    # -- worker process management -------------------------------------

    def _spawn_command(self, worker: _Worker) -> "list[str]":
        return [
            self.python,
            str(self.daemon_path),
            "--worker-index",
            str(worker.index),
            "--workers",
            str(self.n_workers),
            "--shards",
            str(self.n_shards),
            "--data-dir",
            str(self.data_dir),
            "--port",
            "0",
            *self.worker_args,
        ]

    async def _worker_loop(self, worker: _Worker) -> None:
        """Spawn, connect, resend, babysit; respawn on death, forever."""
        while not self._closed:
            process = await asyncio.create_subprocess_exec(
                *self._spawn_command(worker),
                stdout=asyncio.subprocess.PIPE,
                stderr=None,
            )
            worker.process = process
            try:
                assert process.stdout is not None
                line = await asyncio.wait_for(
                    process.stdout.readline(), ANNOUNCE_TIMEOUT_S
                )
                info = json.loads(line)
                worker.port = int(info["port"])
                applied = {
                    int(shard): int(seq)
                    for shard, seq in info.get("applied", {}).items()
                }
                worker.client = await ServeClient.connect(
                    "127.0.0.1",
                    worker.port,
                    client=f"supervisor-w{worker.index}",
                    max_frame_bytes=self.config.max_frame_bytes,
                )
            except (
                asyncio.TimeoutError,
                ValueError,
                KeyError,
                OSError,
                ServeClientError,
            ):
                if process.returncode is None:
                    process.kill()
                await process.wait()
                if self._closed:
                    return
                worker.respawns += 1
                await asyncio.sleep(0.2)
                continue
            # The worker's WAL knows what survived; our counters must
            # never go backwards past what any incarnation applied.
            for shard, seq in applied.items():
                if shard in self.next_seq:
                    self.next_seq[shard] = max(
                        self.next_seq[shard], seq + 1
                    )
            self._resend_pending(worker)
            worker.ready.set()
            await process.wait()
            worker.ready.clear()
            if worker.client is not None:
                await worker.client.close()
                worker.client = None
            if self._closed:
                return
            worker.respawns += 1
            self.telemetry.count(
                "serve.worker_respawns", worker=worker.index
            )
            print(
                f"repro-ts worker {worker.index} died "
                f"(respawn #{worker.respawns})",
                file=sys.stderr,
                flush=True,
            )

    def _resend_pending(self, worker: _Worker) -> None:
        """Re-forward every unacknowledged op of this worker's shards.

        Seq order per shard preserves per-user FIFO (the router
        admitted them in order); the worker's reply cache answers the
        prefix its WAL already holds.
        """
        assert worker.client is not None
        for shard in worker.shards:
            for seq in sorted(self.pending[shard]):
                self._forward(worker, shard, self.pending[shard][seq])

    def _forward(
        self, worker: _Worker, shard: int, entry: _Pending
    ) -> None:
        assert worker.client is not None
        try:
            future = worker.client.post(entry.frame)
        except ServeClientError:
            return  # stays pending; the respawn loop will resend
        seq = entry.frame.seq  # type: ignore[attr-defined]
        future.add_done_callback(
            lambda fut, shard=shard, seq=seq, entry=entry: (
                self._on_reply(shard, seq, entry, fut)
            )
        )

    def _on_reply(
        self,
        shard: int,
        seq: int,
        entry: _Pending,
        future: "asyncio.Future[Frame]",
    ) -> None:
        if future.cancelled() or future.exception() is not None:
            return  # connection died; the op stays pending for resend
        reply = future.result()
        self.pending[shard].pop(seq, None)
        if not entry.future.done():
            entry.future.set_result(
                _clone_with(reply, id=entry.client_id)
            )

    # -- session surface -----------------------------------------------

    def open_session(self, client: str = "client") -> ClientSession:
        self._session_seq += 1
        session = ClientSession(f"s{self._session_seq}", client)
        self._sessions[session.session_id] = session
        self.telemetry.gauge("serve.connections", len(self._sessions))
        return session

    def close_session(self, session: ClientSession) -> None:
        self._sessions.pop(session.session_id, None)
        self.telemetry.gauge("serve.connections", len(self._sessions))

    def welcome(self, session: ClientSession, hello: Hello) -> Frame:
        if hello.version != PROTOCOL_VERSION:
            return ErrorReply(
                id=None,
                code="bad_version",
                message=(
                    f"protocol version {hello.version} not supported; "
                    f"server speaks {PROTOCOL_VERSION}"
                ),
            )
        session.client = hello.client
        return Welcome(
            version=PROTOCOL_VERSION,
            server=f"{self.config.server_name}-supervisor",
            session=session.session_id,
            max_inflight=self.config.max_inflight,
            max_queue_depth=self.config.max_queue_depth,
            trace=False,
        )

    def note_protocol_error(self) -> None:
        self.protocol_errors += 1
        self.telemetry.count("serve.protocol_errors")

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def queue_depth(self) -> int:
        return sum(len(entries) for entries in self.pending.values())

    # -- op surface ----------------------------------------------------

    async def submit(self, session: ClientSession, frame: Frame) -> Frame:
        if isinstance(frame, Hello):
            return self.welcome(session, frame)
        if isinstance(frame, StatsRequest):
            return await self._stats(frame)
        if isinstance(frame, HealthRequest):
            return await self._health(frame)
        if isinstance(frame, DrainRequest):
            return await self._drain(frame)
        if isinstance(frame, (MetricsRequest, ProfileRequest)):
            # Per-worker observability lives on the workers' own ports
            # (the fleet scraper hits them directly); the supervisor
            # proxies to its first worker as a convenience.
            worker = self.workers[0]
            if worker.client is None:
                return ErrorReply(
                    id=frame.id,
                    code="unavailable",
                    message="no worker connected",
                )
            out_id = self._allocate_out_id()
            reply = await worker.client.post(
                _clone_with(frame, id=out_id)
            )
            return _clone_with(reply, id=frame.id)
        if isinstance(frame, TracesRequest):
            return TracesReply(id=frame.id, body="[]")
        if not isinstance(frame, (LocationUpdate, ServiceRequest)):
            self.note_protocol_error()
            return ErrorReply(
                id=getattr(frame, "id", None),
                code="unknown_op",
                message=f"frame {frame.op!r} is not servable",
            )
        if self._draining or self._closed:
            return ErrorReply(
                id=frame.id,
                code="draining",
                message="server is draining; no new work admitted",
            )
        shard = shard_of(frame.user_id, self.n_shards)
        worker = self._owner[shard]
        if self.queue_depth >= self.config.max_queue_depth:
            self.telemetry.count(
                "serve.shed", reason="queue", shard=shard
            )
            return ErrorReply(
                id=frame.id,
                code="overloaded",
                message="supervisor pending window is full",
                retry_after=self.config.retry_after_floor_s,
            )
        seq = self.next_seq[shard]
        self.next_seq[shard] = seq + 1
        out_id = self._allocate_out_id()
        stamped = _clone_with(frame, id=out_id, seq=seq)
        entry = _Pending(
            stamped,
            asyncio.get_running_loop().create_future(),
            frame.id,
        )
        self.pending[shard][seq] = entry
        if worker.client is not None:
            self._forward(worker, shard, entry)
        # else: the worker is mid-respawn; _resend_pending picks it up.
        return await entry.future

    def _allocate_out_id(self) -> int:
        self._next_out_id += 1
        return self._next_out_id

    async def _stats(self, frame: StatsRequest) -> Frame:
        totals = dict.fromkeys(
            ("accepted", "served", "shed", "rejected",
             "protocol_errors", "queue_depth"), 0,
        )
        for worker in self.workers:
            if worker.client is None:
                continue
            try:
                stats = await worker.client.stats()
            except (ServeClientError, ConnectionError, OSError):
                continue
            for key in totals:
                totals[key] += getattr(stats, key)
        return StatsReply(
            id=frame.id,
            accepted=totals["accepted"],
            served=totals["served"],
            shed=totals["shed"],
            rejected=totals["rejected"],
            protocol_errors=totals["protocol_errors"]
            + self.protocol_errors,
            queue_depth=totals["queue_depth"] + self.queue_depth,
            sessions=len(self._sessions),
        )

    async def _health(self, frame: HealthRequest) -> Frame:
        served = shed = 0
        degraded = False
        for worker in self.workers:
            if worker.client is None:
                degraded = True
                continue
            try:
                health = await worker.client.health()
            except (ServeClientError, ConnectionError, OSError):
                degraded = True
                continue
            served += health.served
            shed += health.shed
            degraded = degraded or health.status == "degraded"
        status = (
            "draining"
            if self._draining or self._closed
            else ("degraded" if degraded else "ok")
        )
        return HealthReply(
            id=frame.id,
            status=status,
            uptime_s=time.monotonic() - self.started_at,
            queue_depth=self.queue_depth,
            sessions=len(self._sessions),
            served=served,
            shed=shed,
            slo_ok=not degraded,
            breaches=0,
        )

    async def _drain(self, frame: DrainRequest) -> Frame:
        self._draining = True
        # Wait for our own pending window first: a worker drain while
        # forwarded ops are still in flight would count them rejected.
        deadline = time.monotonic() + 30.0
        while self.queue_depth and time.monotonic() < deadline:
            await asyncio.sleep(0.01)
        served = shed = rejected = pending = 0
        for worker in self.workers:
            if worker.client is None:
                continue
            try:
                drained = await worker.client.drain()
            except (ServeClientError, ConnectionError, OSError):
                continue
            served += drained.served
            shed += drained.shed
            rejected += drained.rejected
            pending += drained.pending
        return DrainReply(
            id=frame.id,
            served=served,
            shed=shed,
            rejected=rejected,
            pending=pending + self.queue_depth,
        )
