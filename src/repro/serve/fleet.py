"""Wire-level fleet scraping for the aggregation layer.

:mod:`repro.obs.aggregate` defines the transport-free merge semantics
and :class:`~repro.obs.aggregate.MetricsCollector`; this module
supplies the concrete scrape callable that talks the NDJSON protocol:
:func:`scrape_worker` opens one :class:`~repro.serve.client.ServeClient`
connection and pulls the ``health``, ``metrics``, and ``traces`` ops
into a :class:`~repro.obs.aggregate.WorkerScrape`, and
:func:`collect_fleet` polls every ``host:port`` target concurrently
into one merged :class:`~repro.obs.aggregate.FleetView`.

A worker with telemetry disabled answers ``metrics``/``traces`` with
errors; those degrade to empty samples (health still reports), while a
worker that cannot be reached at all surfaces in
:attr:`~repro.obs.aggregate.FleetView.errors`.
"""

from __future__ import annotations

import json
import ssl

from repro.obs.aggregate import (
    FleetView,
    MetricsCollector,
    WorkerScrape,
)
from repro.obs.export import parse_exposition
from repro.serve.client import ServeClient, ServeClientError
from repro.serve.http import HttpServeClient
from repro.serve.transports import client_ssl_context


def parse_target(target: str) -> tuple[str, int]:
    """Split a ``host:port`` target string."""
    host, sep, port_text = target.rpartition(":")
    if not sep or not host:
        raise ValueError(
            f"target must look like host:port, got {target!r}"
        )
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(
            f"target {target!r} has a non-numeric port"
        ) from None
    return host, port


async def scrape_worker(
    host: str,
    port: int,
    worker: str | None = None,
    trace_limit: int = 32,
    client_name: str = "fleet-scraper",
    transport: str = "tcp",
    ssl_context: "ssl.SSLContext | None" = None,
    token: "str | None" = None,
) -> WorkerScrape:
    """Pull one worker's health/metrics/traces over the wire.

    ``worker`` names the scrape (defaults to ``host:port``); it becomes
    the ``worker`` label on per-worker series in the merged view.
    Connection failures propagate (the collector records them); a
    worker that merely lacks telemetry yields empty samples/traces.

    Hardened fleets scrape like any other client: ``transport`` picks
    the dial (``"tcp"``/``"tls"`` NDJSON or ``"http"``),
    ``ssl_context`` pins the daemon's cert, ``token`` rides the hello.
    """
    scrape = WorkerScrape(worker=worker or f"{host}:{port}")
    client: "ServeClient | HttpServeClient"
    if transport == "http":
        client = await HttpServeClient.connect(
            host,
            port,
            client=client_name,
            ssl=ssl_context,
            token=token,
        )
    else:
        client = await ServeClient.connect(
            host,
            port,
            client=client_name,
            ssl=ssl_context,
            token=token,
        )
    try:
        health = await client.health()
        scrape.health = {
            "status": health.status,
            "uptime_s": health.uptime_s,
            "queue_depth": health.queue_depth,
            "sessions": health.sessions,
            "served": health.served,
            "shed": health.shed,
            "slo_ok": health.slo_ok,
            "breaches": health.breaches,
        }
        try:
            metrics = await client.metrics()
            scrape.samples, scrape.exemplars = parse_exposition(
                metrics.body
            )
        except ServeClientError:
            pass  # telemetry disabled on this worker
        try:
            traces = await client.traces(limit=trace_limit)
            entries = json.loads(traces.body)
            if isinstance(entries, list):
                scrape.traces = [
                    entry
                    for entry in entries
                    if isinstance(entry, dict)
                ]
        except ServeClientError:
            pass
    finally:
        await client.close()
    return scrape


async def collect_fleet(
    targets: "list[str] | tuple[str, ...]",
    trace_limit: int = 32,
    transport: str = "tcp",
    tls_ca: "str | None" = None,
    token: "str | None" = None,
) -> FleetView:
    """One concurrent scrape round over ``host:port`` targets.

    ``transport``/``tls_ca``/``token`` apply to every target — a fleet
    is deployed with one frontend policy, so the scraper carries one
    credential set.
    """
    resolved = {
        target: parse_target(target) for target in targets
    }  # validate every target before any connection is attempted
    ssl_context = (
        client_ssl_context(tls_ca) if tls_ca is not None else None
    )

    async def scrape(target: str) -> WorkerScrape:
        host, port = resolved[target]
        return await scrape_worker(
            host,
            port,
            worker=target,
            trace_limit=trace_limit,
            transport=transport,
            ssl_context=ssl_context,
            token=token,
        )

    collector = MetricsCollector(scrape, list(targets))
    return await collector.collect()
