"""Load generation and serving-equivalence verification.

The harness has three layers, shared by ``tools/loadgen.py``, benchmark
E17, and the serving tests:

* **workload** — :func:`build_workload` turns a seeded
  :class:`~repro.mobility.population.SyntheticCity` into a
  per-user-ordered timeline of :class:`~repro.engine.pipeline.BatchItem`
  entries (every ``request_stride``-th sample becomes a service
  request).  :func:`build_engine` builds the engine that serves it:
  LBQIDs registered and sessions pre-opened in sorted user order, and —
  crucially — the store **pre-seeded with the full city history**.
  Against a warm store every ingest during serving duplicates an
  already-present sample, and Algorithm 1's selection is
  distance/membership-based, so per-user decisions become invariant to
  how concurrent clients interleave (the determinism the acceptance
  test pins);
* **open-loop driver** — :func:`run_loadgen` partitions users across N
  concurrent client connections and fires each item at its scheduled
  arrival time (global index / rate) *without waiting for replies* —
  an open-loop arrival process, so overload manifests as shed replies
  rather than a self-throttling client;
* **verification** — :func:`offline_replay` replays the identical
  workload through ``Engine.process_batch`` and
  :func:`decision_key` projects both streams onto the comparable
  decision fields (everything except the TS-internal ``msgid`` and the
  pseudonym *strings*, whose global issue order legitimately depends on
  interleaving; rotation events themselves are compared).
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Sequence

from repro.core.generalization import ToleranceConstraint
from repro.core.unlinking import AlwaysUnlink
from repro.engine.context import AnonymizerEvent
from repro.engine.pipeline import BatchItem, Engine
from repro.experiments.workloads import make_policy
from repro.mobility.population import CityConfig, SyntheticCity
from repro.mod.store import TrajectoryStore
from repro.obs.config import Telemetry, TelemetryConfig
from repro.serve.client import ServeClient
from repro.serve.gate import ConnectionGate, GateConfig
from repro.serve.http import HttpServeClient, HttpTransport
from repro.serve.protocol import (
    DecisionReply,
    DrainRequest,
    ErrorReply,
    Frame,
    Hello,
    LocationUpdate,
    ProfileReply,
    ProfileRequest,
    ServiceRequest,
    StatsRequest,
    Welcome,
)
from repro.serve.server import ServeConfig, TrustedServer
from repro.serve.transports import (
    LoopbackConnection,
    LoopbackTransport,
    TcpTransport,
    client_ssl_context,
    server_ssl_context,
)

SERVICE = "poi"


# ---------------------------------------------------------------------
# workload
# ---------------------------------------------------------------------


@dataclass(frozen=True)
class WorkloadConfig:
    """Shape of the serving workload (all seeded, fully deterministic)."""

    seed: int = 11
    n_commuters: int = 12
    n_wanderers: int = 6
    days: int = 7
    #: Every Nth sample of a user becomes a service request.
    request_stride: int = 3
    k: int = 4
    tolerance_side: float = 700.0
    tolerance_duration: float = 1800.0
    quiet_period: float = 900.0
    #: Cell size (meters) of the store's grid index; ``None`` serves
    #: without one (the E9 speedup stays off).
    index_cell_size: float | None = None
    #: Trajectory-store backend (``"python"``/``"numpy"``); ``None``
    #: defers to the ``REPRO_STORE_BACKEND`` environment variable.
    #: Decision streams are identical either way; only latency moves.
    backend: str | None = None

    def tolerance(self) -> ToleranceConstraint:
        return ToleranceConstraint.square(
            self.tolerance_side, self.tolerance_duration
        )

    def city_config(self) -> CityConfig:
        return CityConfig(
            seed=self.seed,
            n_commuters=self.n_commuters,
            n_wanderers=self.n_wanderers,
            nx_blocks=10,
            ny_blocks=10,
            days=self.days,
        )


@dataclass
class ServingWorkload:
    """A city timeline ready to serve, plus its ground truth."""

    city: SyntheticCity
    #: Global timeline in timestamp order (the offline replay order).
    timeline: list[BatchItem]
    #: Each user's items, in that user's time order.
    per_user: dict[int, list[BatchItem]]

    @property
    def user_ids(self) -> list[int]:
        return sorted(self.per_user)

    @property
    def n_requests(self) -> int:
        return sum(1 for item in self.timeline if item.is_request)


def build_workload(
    config: WorkloadConfig,
    max_requests: int | None = None,
) -> ServingWorkload:
    """Generate the serving timeline (truncated after ``max_requests``)."""
    city = SyntheticCity.generate(config.city_config())
    samples = [
        (user_id, sample)
        for user_id in city.store.user_ids()
        for sample in city.store.history(user_id)
    ]
    samples.sort(key=lambda pair: pair[1].t)
    timeline: list[BatchItem] = []
    requests = 0
    counts: dict[int, int] = {}
    for user_id, sample in samples:
        seen = counts.get(user_id, 0)
        counts[user_id] = seen + 1
        is_request = seen % config.request_stride == (
            config.request_stride - 1
        )
        timeline.append(
            BatchItem(
                user_id=user_id,
                location=sample,
                service=SERVICE if is_request else None,
            )
        )
        if is_request:
            requests += 1
            if max_requests is not None and requests >= max_requests:
                break
    per_user: dict[int, list[BatchItem]] = {}
    for item in timeline:
        per_user.setdefault(item.user_id, []).append(item)
    return ServingWorkload(city=city, timeline=timeline, per_user=per_user)


def build_engine(
    workload: ServingWorkload,
    config: WorkloadConfig,
    telemetry: "Telemetry | TelemetryConfig | None" = None,
) -> Engine:
    """An engine ready to serve ``workload`` (warm store, see module doc).

    Identical construction backs both the online server and the offline
    replay, so the two runs differ only in how operations arrive.
    """
    engine = Engine(
        TrajectoryStore(
            index_cell_size=config.index_cell_size,
            telemetry=telemetry,
            backend=config.backend,
        ),
        policy=make_policy(
            config.k, tolerance=config.tolerance(), service=SERVICE
        ),
        unlinker=AlwaysUnlink(),
        quiet_period=config.quiet_period,
        telemetry=telemetry,
    )
    for commuter in sorted(
        workload.city.commuters, key=lambda c: c.user_id
    ):
        engine.register_lbqid(commuter.user_id, commuter.lbqid())
    for user_id in workload.user_ids:
        # Pre-open sessions in sorted order so session creation (and
        # initial pseudonym issue) is independent of arrival order.
        engine.session(user_id)
        engine.sessions.pseudonym(user_id)
        engine.store.add_points(
            user_id, workload.city.store.history(user_id)
        )
    return engine


def offline_replay(
    workload: ServingWorkload, config: WorkloadConfig
) -> list[AnonymizerEvent]:
    """The ground-truth batch replay of the same workload."""
    engine = build_engine(workload, config)
    return engine.process_batch(workload.timeline)


def decision_key(reply: "DecisionReply | AnonymizerEvent") -> tuple:
    """Project one decision onto its interleaving-invariant fields."""
    if isinstance(reply, DecisionReply):
        return (
            reply.decision,
            reply.forwarded,
            reply.context,
            reply.lbqid,
            reply.step,
            reply.required_k,
            reply.rotated,
        )
    context = reply.request.context
    return (
        reply.decision.value,
        reply.forwarded,
        (
            context.rect.x_min,
            context.rect.y_min,
            context.rect.x_max,
            context.rect.y_max,
            context.interval.start,
            context.interval.end,
        ),
        reply.lbqid_name,
        reply.step,
        reply.required_k,
        reply.pseudonym_rotated,
    )


# ---------------------------------------------------------------------
# open-loop driver
# ---------------------------------------------------------------------


@dataclass(frozen=True)
class LoadgenConfig:
    """One load-generation run."""

    workload: WorkloadConfig = WorkloadConfig()
    serve: ServeConfig = ServeConfig()
    #: Service requests to issue (the timeline is truncated after them).
    requests: int = 200
    clients: int = 4
    #: Total offered arrival rate over all clients (operations/s).
    rate: float = 2000.0
    #: "tcp" (plaintext NDJSON), "tls" (same over TLS), "http"
    #: (NDJSON bodies over HTTP/1.1, HTTPS when certs are given), or
    #: in-process "loopback".
    transport: str = "tcp"
    #: Connect to an external daemon instead of self-hosting.
    host: str | None = None
    port: int | None = None
    #: Bearer token sent in the hello (gated deployments).
    token: str | None = None
    #: Server cert/key for self-hosted TLS arms.
    tls_cert: str | None = None
    tls_key: str | None = None
    #: Client trust anchor; defaults to ``tls_cert`` (self-signed pin).
    tls_ca: str | None = None
    #: Install a ConnectionGate on self-hosted runs.
    gate: "GateConfig | None" = None
    #: Re-dial budget on dropped sockets (TCP/TLS transports).
    reconnect: int = 0
    #: Send the non-request location updates too.
    include_updates: bool = True
    #: Compare the served decision stream against the offline replay.
    verify: bool = False
    telemetry_enabled: bool = True
    #: Resubmit shed operations up to this many times (bounded
    #: exponential backoff honoring the server's ``retry_after`` hint).
    retries: int = 0
    #: Negotiate distributed tracing and attach contexts to every
    #: frame (requires ``telemetry_enabled`` on a self-hosted run).
    trace: bool = False
    #: Run the server's sampling profiler across the pass (driven over
    #: the wire via the ``profile`` op, so it works against external
    #: daemons too); the stage self-time table lands on the report.
    profile: bool = False
    profile_interval_ms: float = 5.0

    def __post_init__(self) -> None:
        if self.transport not in ("tcp", "tls", "http", "loopback"):
            raise ValueError(
                "transport must be 'tcp', 'tls', 'http', or "
                f"'loopback', got {self.transport!r}"
            )
        if self.transport == "tls" and self.host is None and (
            self.tls_cert is None or self.tls_key is None
        ):
            raise ValueError(
                "self-hosted tls transport needs tls_cert and tls_key"
            )
        if self.clients < 1:
            raise ValueError(f"clients must be >= 1, got {self.clients}")
        if self.rate <= 0:
            raise ValueError(f"rate must be positive, got {self.rate}")


@dataclass
class LoadReport:
    """Everything one load-generation run measured."""

    requests_sent: int = 0
    updates_sent: int = 0
    decisions: int = 0
    acks: int = 0
    shed: int = 0
    rejected: int = 0
    protocol_errors: int = 0
    internal_errors: int = 0
    #: Shed operations that were resubmitted (``retries > 0``).
    retried: int = 0
    #: Retried operations that ultimately got a non-shed reply.
    recovered: int = 0
    elapsed_s: float = 0.0
    throughput_rps: float = 0.0
    latency_ms: dict[str, float] = field(default_factory=dict)
    decision_counts: dict[str, int] = field(default_factory=dict)
    clean_shutdown: bool = False
    #: ``None`` when verification was not requested.
    verified: bool | None = None
    mismatches: int = 0
    #: Server-side telemetry snapshot holder (self-hosted runs only).
    telemetry: Telemetry | None = None
    #: The self-hosted run's gate (its counters back the E19/CI
    #: never-touched-a-sequencer assertions); None when ungated.
    gate: "ConnectionGate | None" = None
    #: The profiler's stage report (``profile`` op ``stages`` body),
    #: None unless the run profiled.
    profile: dict | None = None
    profile_samples: int = 0

    @property
    def shed_rate(self) -> float:
        total = self.requests_sent + self.updates_sent
        return self.shed / total if total else 0.0

    def to_dict(self) -> dict:
        return {
            "requests_sent": self.requests_sent,
            "updates_sent": self.updates_sent,
            "decisions": self.decisions,
            "acks": self.acks,
            "shed": self.shed,
            "shed_rate": self.shed_rate,
            "rejected": self.rejected,
            "protocol_errors": self.protocol_errors,
            "internal_errors": self.internal_errors,
            "retried": self.retried,
            "recovered": self.recovered,
            "elapsed_s": self.elapsed_s,
            "throughput_rps": self.throughput_rps,
            "latency_ms": dict(self.latency_ms),
            "decision_counts": dict(self.decision_counts),
            "clean_shutdown": self.clean_shutdown,
            "verified": self.verified,
            "mismatches": self.mismatches,
            "profile": self.profile,
            "profile_samples": self.profile_samples,
        }

    def summary_lines(self) -> list[str]:
        lines = [
            "== loadgen ==",
            (
                f"sent: {self.requests_sent} requests + "
                f"{self.updates_sent} updates in {self.elapsed_s:.2f}s "
                f"({self.throughput_rps:,.0f} req/s completed)"
            ),
            (
                f"decisions: {self.decisions}  acks: {self.acks}  "
                f"shed: {self.shed} ({self.shed_rate:.1%})  "
                f"rejected: {self.rejected}  "
                f"protocol_errors: {self.protocol_errors}  "
                f"internal_errors: {self.internal_errors}"
            ),
        ]
        if self.retried:
            lines.append(
                f"retried: {self.retried}  recovered: {self.recovered}"
            )
        if self.latency_ms:
            lines.append(
                "latency ms: "
                + "  ".join(
                    f"{name}={value:.2f}"
                    for name, value in self.latency_ms.items()
                )
            )
        if self.decision_counts:
            lines.append(
                "decisions: "
                + "  ".join(
                    f"{name}={count}"
                    for name, count in sorted(self.decision_counts.items())
                )
            )
        if self.profile is not None:
            shares = "  ".join(
                f"{row['stage']}={row['share_pct']:.1f}%"
                for row in self.profile.get("rows", [])
                if row.get("share_pct") is not None
            )
            lines.append(
                f"profile: {self.profile_samples} samples"
                + (f"  {shares}" if shares else "")
            )
        lines.append(
            f"clean_shutdown: {self.clean_shutdown}"
            + (
                f"  verified: {self.verified} "
                f"(mismatches={self.mismatches})"
                if self.verified is not None
                else ""
            )
        )
        return lines

    @property
    def ok(self) -> bool:
        """The loadgen acceptance bar: no protocol damage, clean exit."""
        return (
            self.protocol_errors == 0
            and self.internal_errors == 0
            and self.clean_shutdown
            and (self.verified is not False)
        )


class _Connection:
    """Uniform facade over the three client shapes (TCP/HTTP/loopback)."""

    def __init__(
        self,
        raw: "ServeClient | HttpServeClient | LoopbackConnection",
        index: int,
    ) -> None:
        self.raw = raw
        self.index = index
        self._next_id = 0

    def next_id(self) -> int:
        self._next_id += 1
        return self._next_id

    def post(self, frame: Frame) -> "asyncio.Future[Frame]":
        # Loadgen builds frames itself, bypassing the client's traced
        # post_request/post_update wrappers — mint the root span here
        # so traced TCP runs still carry contexts on every frame.
        raw = self.raw
        if (
            isinstance(raw, ServeClient)
            and raw.trace_enabled
            and isinstance(frame, (LocationUpdate, ServiceRequest))
            and frame.trace is None
        ):
            wire, span = raw._mint_trace(frame.op)
            if wire is not None:
                # A cheap clone beats dataclasses.replace on this
                # per-operation path (replace re-runs __init__).
                clone = object.__new__(type(frame))
                clone.__dict__.update(frame.__dict__)
                clone.__dict__["trace"] = wire
                frame = clone
                future = raw.post(frame)
                if span is not None:
                    future.add_done_callback(
                        lambda f, s=span: ServeClient._finish_span(s, f)
                    )
                return future
        return raw.post(frame)

    async def roundtrip(self, frame: Frame) -> Frame:
        if isinstance(self.raw, LoopbackConnection):
            return await self.raw.send(frame)
        return await self.raw.post(frame)

    async def close(self) -> None:
        if isinstance(self.raw, LoopbackConnection):
            self.raw.close()
        else:
            await self.raw.close()


def _percentiles(samples: "list[float]") -> dict[str, float]:
    if not samples:
        return {}
    ordered = sorted(samples)
    last = len(ordered) - 1

    def at(q: float) -> float:
        return ordered[min(last, int(round(q * last)))]

    return {
        "p50": at(0.50),
        "p95": at(0.95),
        "p99": at(0.99),
        "p99_9": at(0.999),
        "max": ordered[last],
    }


def _frame_for(item: BatchItem, conn: _Connection) -> Frame:
    """Build the wire frame of one timeline item (fresh id per send)."""
    if item.is_request:
        return ServiceRequest(
            id=conn.next_id(),
            user_id=item.user_id,
            x=item.location.x,
            y=item.location.y,
            t=item.location.t,
            service=item.service or SERVICE,
        )
    return LocationUpdate(
        id=conn.next_id(),
        user_id=item.user_id,
        x=item.location.x,
        y=item.location.y,
        t=item.location.t,
    )


async def _client_run(
    conn: _Connection,
    items: "Sequence[tuple[int, BatchItem]]",
    t0: float,
    rate: float,
    latencies: "list[float]",
) -> "list[tuple[BatchItem, asyncio.Future[Frame]]]":
    """Fire this client's slice of the timeline, open-loop."""
    loop = asyncio.get_running_loop()
    sent: "list[tuple[BatchItem, asyncio.Future[Frame]]]" = []
    for global_index, item in items:
        due = t0 + global_index / rate
        delay = due - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        frame = _frame_for(item, conn)
        sent_at = loop.time()
        future = conn.post(frame)
        if item.is_request:
            future.add_done_callback(
                lambda fut, start=sent_at: (
                    latencies.append((loop.time() - start) * 1000.0)
                    if not fut.cancelled() and fut.exception() is None
                    else None
                )
            )
        sent.append((item, future))
    return sent


async def _retry_shed(
    flat: "list[tuple[BatchItem, _Connection]]",
    replies: "list[object]",
    retries: int,
    report: LoadReport,
    backoff_base_s: float = 0.05,
    backoff_cap_s: float = 5.0,
) -> None:
    """Resubmit shed operations with bounded exponential backoff.

    Waits the larger of the server's ``retry_after`` hint (the worst
    over this round's sheds) and ``backoff_base_s · 2^attempt``, capped
    at ``backoff_cap_s``; updates ``replies`` in place so the caller's
    tallying sees post-retry outcomes.
    """
    for attempt in range(retries):
        shed_idx = [
            index
            for index, reply in enumerate(replies)
            if isinstance(reply, ErrorReply) and reply.is_shed
        ]
        if not shed_idx:
            return
        hint = max(
            getattr(replies[index], "retry_after", None) or 0.0
            for index in shed_idx
        )
        await asyncio.sleep(
            min(backoff_cap_s, max(hint, backoff_base_s * 2.0**attempt))
        )
        futures = []
        for index in shed_idx:
            item, conn = flat[index]
            futures.append(conn.post(_frame_for(item, conn)))
        report.retried += len(shed_idx)
        fresh = await asyncio.gather(*futures, return_exceptions=True)
        for index, reply in zip(shed_idx, fresh):
            if isinstance(reply, BaseException):
                continue
            replies[index] = reply
            if not (isinstance(reply, ErrorReply) and reply.is_shed):
                report.recovered += 1


async def run_loadgen(
    config: LoadgenConfig, server: "TrustedServer | None" = None
) -> LoadReport:
    """Run one open-loop load-generation pass; see module doc.

    Pass ``server`` to drive an existing (started) server over its
    loopback; otherwise a self-hosted server is built from the workload
    and torn down at the end.  ``config.host`` targets an external TCP
    daemon instead — the workload must match what that daemon serves.
    """
    report = LoadReport()
    workload = build_workload(
        config.workload, max_requests=config.requests
    )
    if not config.include_updates:
        workload.timeline = [
            item for item in workload.timeline if item.is_request
        ]
        workload.per_user = {}
        for item in workload.timeline:
            workload.per_user.setdefault(item.user_id, []).append(item)

    transport: "TcpTransport | HttpTransport | None" = None
    own_server = server is None and config.host is None
    if own_server:
        telemetry = (
            TelemetryConfig(enabled=True).build()
            if config.telemetry_enabled
            else None
        )
        engine = build_engine(workload, config.workload, telemetry)
        server = TrustedServer(engine, config.serve)
        await server.start()
        report.telemetry = engine.telemetry
    gate: "ConnectionGate | None" = None
    if config.gate is not None and config.host is None:
        assert server is not None
        gate = ConnectionGate(
            config.gate, telemetry=server.telemetry
        )
        report.gate = gate
    server_ctx = None
    if config.host is None and config.tls_cert is not None:
        assert config.tls_key is not None
        server_ctx = server_ssl_context(
            config.tls_cert, config.tls_key
        )
    client_ca = config.tls_ca or config.tls_cert
    client_ctx = None
    if config.transport == "tls" or (
        config.transport == "http" and client_ca is not None
    ):
        assert client_ca is not None
        client_ctx = client_ssl_context(client_ca)
    host, port = config.host, config.port
    if config.transport != "loopback" and config.host is None:
        assert server is not None
        if config.transport == "http":
            transport = HttpTransport(
                server, ssl_context=server_ctx, gate=gate
            )
        else:
            transport = TcpTransport(
                server, ssl_context=server_ctx, gate=gate
            )
        host, port = await transport.start()

    connections: "list[_Connection]" = []
    try:
        client_telemetry: "Telemetry | None" = None
        if config.trace:
            # Self-hosted runs share the engine's telemetry, so client
            # and server spans land in one sink set (single-file trace
            # reconstruction); external daemons get a local recorder.
            client_telemetry = report.telemetry or (
                TelemetryConfig(enabled=True).build()
            )
        for index in range(config.clients):
            raw: "ServeClient | HttpServeClient | LoopbackConnection"
            if config.transport in ("tcp", "tls"):
                assert host is not None and port is not None
                raw = await ServeClient.connect(
                    host,
                    port,
                    client=f"loadgen-{index}",
                    telemetry=client_telemetry,
                    trace=config.trace,
                    ssl=client_ctx,
                    token=config.token,
                    reconnect=config.reconnect,
                )
            elif config.transport == "http":
                assert host is not None and port is not None
                raw = await HttpServeClient.connect(
                    host,
                    port,
                    client=f"loadgen-{index}",
                    telemetry=client_telemetry,
                    ssl=client_ctx,
                    token=config.token,
                )
            else:
                assert server is not None
                raw = LoopbackTransport(server, gate=gate).connect(
                    client=f"loadgen-{index}", trace=config.trace
                )
            connections.append(_Connection(raw, index))

        if config.transport == "loopback" and gate is not None:
            # Loopback has no dial-time handshake; a gated run sends
            # the hello explicitly so each connection earns a ticket.
            for conn in connections:
                greeting = await conn.roundtrip(
                    Hello(
                        client=f"loadgen-{conn.index}",
                        token=config.token,
                    )
                )
                if not isinstance(greeting, Welcome):
                    raise ValueError(
                        f"gated loopback hello rejected: {greeting!r}"
                    )

        if config.profile:
            # Driven over the wire so the op is exercised end-to-end
            # and external daemons can be profiled the same way.
            profile_conn = connections[0]
            started_reply = await profile_conn.roundtrip(
                ProfileRequest(
                    id=profile_conn.next_id(),
                    action="start",
                    interval_ms=config.profile_interval_ms,
                )
            )
            if isinstance(started_reply, ErrorReply):
                raise ValueError(
                    "profiler start failed: "
                    f"{started_reply.code}: {started_reply.message}"
                )

        # Round-robin user partition: every user's items stay on one
        # connection, preserving per-user submission order.
        owner = {
            user_id: connections[rank % len(connections)]
            for rank, user_id in enumerate(workload.user_ids)
        }
        slices: "dict[int, list[tuple[int, BatchItem]]]" = {
            conn.index: [] for conn in connections
        }
        for global_index, item in enumerate(workload.timeline):
            conn = owner[item.user_id]
            slices[conn.index].append((global_index, item))

        latencies: "list[float]" = []
        loop = asyncio.get_running_loop()
        t0 = loop.time() + 0.02
        started = loop.time()
        results = await asyncio.gather(
            *(
                _client_run(
                    conn,
                    slices[conn.index],
                    t0,
                    config.rate,
                    latencies,
                )
                for conn in connections
            )
        )
        flat: "list[tuple[BatchItem, asyncio.Future[Frame]]]" = []
        flat_conn: "list[_Connection]" = []
        for conn, batch in zip(connections, results):
            for item, future in batch:
                flat.append((item, future))
                flat_conn.append(conn)
        replies = list(
            await asyncio.gather(
                *(future for _item, future in flat),
                return_exceptions=True,
            )
        )
        report.elapsed_s = loop.time() - started

        if config.retries > 0:
            await _retry_shed(
                [
                    (item, conn)
                    for (item, _future), conn in zip(flat, flat_conn)
                ],
                replies,
                config.retries,
                report,
            )

        per_user_replies: "dict[int, list[Frame]]" = {}
        for (item, _future), reply in zip(flat, replies):
            if isinstance(reply, BaseException):
                report.internal_errors += 1
                continue
            if item.is_request:
                report.requests_sent += 1
            else:
                report.updates_sent += 1
            if isinstance(reply, DecisionReply):
                report.decisions += 1
                report.decision_counts[reply.decision] = (
                    report.decision_counts.get(reply.decision, 0) + 1
                )
            elif isinstance(reply, ErrorReply):
                if reply.is_shed:
                    report.shed += 1
                elif reply.code == "draining":
                    report.rejected += 1
                elif reply.code == "internal":
                    report.internal_errors += 1
                else:
                    report.protocol_errors += 1
            else:
                report.acks += 1
            if item.is_request:
                per_user_replies.setdefault(item.user_id, []).append(
                    reply
                )

        if report.elapsed_s > 0:
            report.throughput_rps = (
                report.decisions / report.elapsed_s
            )
        report.latency_ms = _percentiles(latencies)

        if config.profile:
            profile_conn = connections[0]
            await profile_conn.roundtrip(
                ProfileRequest(
                    id=profile_conn.next_id(), action="stop"
                )
            )
            stages = await profile_conn.roundtrip(
                ProfileRequest(
                    id=profile_conn.next_id(), action="stages"
                )
            )
            if isinstance(stages, ProfileReply) and stages.body:
                report.profile = json.loads(stages.body)
                report.profile_samples = stages.samples

        stats_conn = connections[0]
        stats = await stats_conn.roundtrip(
            StatsRequest(id=stats_conn.next_id())
        )
        drained = await stats_conn.roundtrip(
            DrainRequest(id=stats_conn.next_id())
        )
        report.clean_shutdown = (
            getattr(drained, "pending", None) == 0
            and getattr(stats, "op", "") == "stats_reply"
        )

        if config.verify:
            report.verified = _verify(
                workload, config.workload, per_user_replies, report
            )
    finally:
        for conn in connections:
            await conn.close()
        if transport is not None:
            await transport.stop()
        if own_server and server is not None:
            await server.close()
    return report


def _verify(
    workload: ServingWorkload,
    config: WorkloadConfig,
    per_user_replies: "dict[int, list[Frame]]",
    report: LoadReport,
) -> bool:
    """Served decision streams vs the offline batch replay, per user."""
    offline: "dict[int, list[AnonymizerEvent]]" = {}
    for event in offline_replay(workload, config):
        offline.setdefault(event.request.user_id, []).append(event)
    mismatches = 0
    for user_id, events in offline.items():
        served = per_user_replies.get(user_id, [])
        if len(served) != len(events):
            mismatches += abs(len(served) - len(events))
            continue
        for got, want in zip(served, events):
            if not isinstance(got, DecisionReply) or (
                decision_key(got) != decision_key(want)
            ):
                mismatches += 1
    for user_id in per_user_replies:
        if user_id not in offline:
            mismatches += len(per_user_replies[user_id])
    report.mismatches = mismatches
    return mismatches == 0
