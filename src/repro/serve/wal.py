"""Per-shard durability: a JSONL command log with compacting snapshots.

A shard's mutable state — sessions, pseudonyms, trajectory columns — is
a pure function of the operations it applied, in order: the engine is
deterministic, construction is seeded, and every state mutation enters
through exactly two calls (``report_location`` / ``process``).  So the
write-ahead log records *commands*, not state: one JSON line per
state-mutating operation, appended **before** the operation executes.
Recovery rebuilds the warm engine from the workload config and replays
the log; because the op sequence is identical, the rebuilt sessions,
pseudonyms, and trajectory columns are byte-equivalent to the pre-crash
state (``ShardRuntime.fingerprint`` pins this in the tests).

Records are compact::

    {"s": <seq>, "k": "u"|"r", "u": <user_id>,
     "x": <x>, "y": <y>, "t": <t>[, "v": <service>]}

``seq`` is the router-assigned per-shard sequence number — strictly
monotonic, which recovery verifies; ``k`` discriminates location
updates from service requests.

File layout inside one shard directory::

    snapshot.jsonl   # compacted op prefix (may be absent)
    wal.jsonl.<n>    # sealed segments, oldest first
    wal.jsonl        # the live segment

A "snapshot" here is log *compaction*: sealed segments are merged into
``snapshot.jsonl`` and deleted, bounding the file count without ever
losing an op (replay time stays proportional to total ops — the honest
cost of command logging; the op records are ~90 bytes each and replay
runs at memory speed).  On restart the writer never appends to a
pre-crash file: the previous live segment is sealed aside first, so a
crash-torn final record is always segment-final, exactly where
:func:`repro.obs.sinks.read_jsonl` tolerates it.

``fsync`` policy trades durability for latency:

* ``"always"`` — fsync after every append; survives power loss.
* ``"batch"`` — flush to the OS per append, fsync on rotation and
  :meth:`ShardWal.sync`; survives process crashes (SIGKILL), may lose
  the OS cache on power loss.  The default: the kill/restore
  acceptance bar is process death.
* ``"never"`` — stdio buffering only; fastest, bench-only.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import IO, Iterator

from repro.obs.sinks import read_jsonl
from repro.serve.protocol import (
    Frame,
    LocationUpdate,
    ServiceRequest,
)

FSYNC_POLICIES = ("always", "batch", "never")

#: Live-segment filename inside a shard directory.
WAL_NAME = "wal.jsonl"
#: Compacted-prefix filename inside a shard directory.
SNAPSHOT_NAME = "snapshot.jsonl"


@dataclass(frozen=True)
class WalConfig:
    """Durability knobs of one shard's write-ahead log."""

    #: One of :data:`FSYNC_POLICIES`; see the module doc.
    fsync: str = "batch"
    #: Live segment is sealed once it reaches this size (bytes).
    segment_max_bytes: int = 1 << 22
    #: Compact sealed segments into the snapshot every N appended ops;
    #: 0 compacts only on explicit :meth:`ShardWal.compact`.
    snapshot_every: int = 0

    def __post_init__(self) -> None:
        if self.fsync not in FSYNC_POLICIES:
            raise ValueError(
                f"fsync must be one of {FSYNC_POLICIES}, "
                f"got {self.fsync!r}"
            )
        if self.segment_max_bytes < 1:
            raise ValueError(
                "segment_max_bytes must be >= 1, got "
                f"{self.segment_max_bytes}"
            )
        if self.snapshot_every < 0:
            raise ValueError(
                "snapshot_every must be non-negative, got "
                f"{self.snapshot_every}"
            )


def op_record(frame: Frame, seq: int) -> dict:
    """The WAL record of one state-mutating frame."""
    if isinstance(frame, ServiceRequest):
        return {
            "s": seq,
            "k": "r",
            "u": frame.user_id,
            "x": frame.x,
            "y": frame.y,
            "t": frame.t,
            "v": frame.service,
        }
    if isinstance(frame, LocationUpdate):
        return {
            "s": seq,
            "k": "u",
            "u": frame.user_id,
            "x": frame.x,
            "y": frame.y,
            "t": frame.t,
        }
    raise TypeError(
        f"frame {frame.op!r} is not a state-mutating operation"
    )


def frame_of_record(record: dict) -> "LocationUpdate | ServiceRequest":
    """Rebuild the replayable frame of one WAL record."""
    if record["k"] == "r":
        return ServiceRequest(
            id=0,
            user_id=record["u"],
            x=record["x"],
            y=record["y"],
            t=record["t"],
            service=record["v"],
            seq=record["s"],
        )
    return LocationUpdate(
        id=0,
        user_id=record["u"],
        x=record["x"],
        y=record["y"],
        t=record["t"],
        seq=record["s"],
    )


class WalCorruptionError(ValueError):
    """The log violates its own invariants (non-monotonic sequence)."""


class ShardWal:
    """The durable command log of one shard (see module doc)."""

    def __init__(
        self,
        directory: "str | Path",
        config: WalConfig | None = None,
    ) -> None:
        self.directory = Path(directory)
        self.config = config or WalConfig()
        self.directory.mkdir(parents=True, exist_ok=True)
        self._live = self.directory / WAL_NAME
        self._next_suffix = max(
            (s for _p, s in self._sealed_segments()), default=0
        ) + 1
        # Never append to a pre-crash file: seal whatever live segment
        # the previous incarnation left (torn tail and all), so its
        # last record stays segment-final and tolerated on read.
        if self._live.exists():
            self._seal_live()
        self._file: IO[str] = self._live.open("a", encoding="utf-8")
        self._size = 0
        self.appended = 0
        self._since_compact = 0
        #: Highest sequence number appended by this incarnation (the
        #: recovery side tracks its own; -1 means none yet).
        self.last_seq = -1

    # -- write path ----------------------------------------------------

    def append(self, record: dict) -> None:
        """Append one op record; durability per the fsync policy."""
        line = json.dumps(record, separators=(",", ":")) + "\n"
        self._file.write(line)
        policy = self.config.fsync
        if policy == "always":
            self._file.flush()
            os.fsync(self._file.fileno())
        elif policy == "batch":
            self._file.flush()
        self._size += len(line)
        self.appended += 1
        self._since_compact += 1
        seq = record.get("s")
        if isinstance(seq, int):
            self.last_seq = seq
        if self._size >= self.config.segment_max_bytes:
            self._rotate()
        if (
            self.config.snapshot_every
            and self._since_compact >= self.config.snapshot_every
        ):
            self.compact()

    def sync(self) -> None:
        """Force everything appended so far onto the disk."""
        self._file.flush()
        os.fsync(self._file.fileno())

    def close(self) -> None:
        if not self._file.closed:
            self._file.flush()
            self._file.close()

    def _seal_live(self) -> None:
        self._live.rename(
            self._live.with_name(f"{WAL_NAME}.{self._next_suffix}")
        )
        self._next_suffix += 1

    def _rotate(self) -> None:
        """Seal the live segment and open a fresh one."""
        self._file.flush()
        if self.config.fsync != "never":
            os.fsync(self._file.fileno())
        self._file.close()
        self._seal_live()
        self._file = self._live.open("a", encoding="utf-8")
        self._size = 0

    # -- compaction ----------------------------------------------------

    def _sealed_segments(self) -> "list[tuple[Path, int]]":
        """Sealed ``wal.jsonl.<n>`` segments with suffix, oldest first."""
        segments = []
        for path in self.directory.glob(WAL_NAME + ".*"):
            suffix = path.suffix[1:]
            if suffix.isdigit():
                segments.append((path, int(suffix)))
        segments.sort(key=lambda pair: pair[1])
        return segments

    def compact(self) -> int:
        """Merge sealed segments into the snapshot; returns ops merged.

        Only *sealed* segments are compacted — the live segment keeps
        its torn-tail guarantees.  The merge is crash-safe: the new
        snapshot is written beside the old one and renamed into place
        before any segment is deleted, so every op exists in at least
        one file at every instant.
        """
        segments = self._sealed_segments()
        if not segments:
            return 0
        snapshot = self.directory / SNAPSHOT_NAME
        staging = self.directory / (SNAPSHOT_NAME + ".tmp")
        merged = 0
        with staging.open("w", encoding="utf-8") as out:
            if snapshot.exists():
                for record in read_jsonl(snapshot):
                    out.write(
                        json.dumps(record, separators=(",", ":")) + "\n"
                    )
            for path, _suffix in segments:
                for record in read_jsonl(path):
                    out.write(
                        json.dumps(record, separators=(",", ":")) + "\n"
                    )
                    merged += 1
            out.flush()
            os.fsync(out.fileno())
        os.replace(staging, snapshot)
        for path, _suffix in segments:
            path.unlink()
        self._since_compact = 0
        return merged

    # -- recovery ------------------------------------------------------

    @staticmethod
    def recover(directory: "str | Path") -> Iterator[dict]:
        """Yield every logged op of a shard directory, in seq order.

        Reads the snapshot, then the sealed segments, then the live
        segment; each file tolerates one torn final record.  Sequence
        numbers must be strictly increasing across the whole stream —
        anything else means file-level damage beyond a crashed writer
        and raises :class:`WalCorruptionError`.
        """
        directory = Path(directory)
        paths: list[Path] = []
        snapshot = directory / SNAPSHOT_NAME
        if snapshot.exists():
            paths.append(snapshot)
        sealed = []
        for path in directory.glob(WAL_NAME + ".*"):
            suffix = path.suffix[1:]
            if suffix.isdigit():
                sealed.append((int(suffix), path))
        paths.extend(path for _s, path in sorted(sealed))
        live = directory / WAL_NAME
        if live.exists():
            paths.append(live)
        last_seq = -1
        for path in paths:
            for record in read_jsonl(path):
                seq = record.get("s")
                if not isinstance(seq, int) or seq <= last_seq:
                    raise WalCorruptionError(
                        f"{path}: op sequence went {last_seq} -> "
                        f"{seq!r}; the log is damaged beyond a "
                        "crashed writer"
                    )
                last_seq = seq
                yield record
