"""The abstract Unlinking action (Section 6.3).

The paper abstracts pseudonym-change-in-a-mix-zone "into an action called
Unlinking with a likelihood parameter Θ": when it succeeds, requests made
under the old and new pseudonyms have ``Link(r1, r2) < Θ``.

:class:`UnlinkingProvider` is the protocol; this module ships the three
analytical providers (always / never / coin-flip succeed) used to study
the strategy — ``AlwaysUnlink`` is exactly Theorem 1's assumption that
"we can always perform Unlinking for a certain likelihood parameter Θ".
The geometric providers that derive success from actual mix-zone
conditions live in :mod:`repro.mixzone`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

import numpy as np

from repro.geometry.point import STPoint


@dataclass(frozen=True)
class UnlinkOutcome:
    """Result of one unlinking attempt.

    ``theta`` is the guaranteed linkability bound: after a successful
    unlink, any pair of old/new-pseudonym requests links with likelihood
    below ``theta``.  It is meaningful only when ``success`` is True.
    """

    success: bool
    theta: float = 1.0


class UnlinkingProvider(Protocol):
    """Protocol for Section 6.3's Unlinking action."""

    def attempt_unlink(self, user_id: int, location: STPoint) -> (
        UnlinkOutcome
    ):
        """Try to unlink the user's future requests at this point."""
        ...


class AlwaysUnlink:
    """Theorem 1's hypothesis: unlinking always succeeds with bound Θ."""

    def __init__(self, theta: float = 0.0) -> None:
        if not 0 <= theta <= 1:
            raise ValueError(f"theta must be in [0, 1], got {theta}")
        self.theta = theta

    def attempt_unlink(self, user_id: int, location: STPoint) -> (
        UnlinkOutcome
    ):
        return UnlinkOutcome(success=True, theta=self.theta)


class NeverUnlink:
    """Unlinking never available — isolates the generalization step."""

    def attempt_unlink(self, user_id: int, location: STPoint) -> (
        UnlinkOutcome
    ):
        return UnlinkOutcome(success=False)


class ProbabilisticUnlink:
    """Unlinking succeeds with a fixed probability.

    Models an environment where a suitable mix-zone is only sometimes
    reachable, without committing to a geometry; used in the trade-off
    sweeps of benchmark E4.
    """

    def __init__(
        self,
        probability: float,
        rng: np.random.Generator,
        theta: float = 0.0,
    ) -> None:
        if not 0 <= probability <= 1:
            raise ValueError(
                f"probability must be in [0, 1], got {probability}"
            )
        if not 0 <= theta <= 1:
            raise ValueError(f"theta must be in [0, 1], got {theta}")
        self.probability = probability
        self.theta = theta
        self._rng = rng

    def attempt_unlink(self, user_id: int, location: STPoint) -> (
        UnlinkOutcome
    ):
        if self._rng.random() < self.probability:
            return UnlinkOutcome(success=True, theta=self.theta)
        return UnlinkOutcome(success=False)
