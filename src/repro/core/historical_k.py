"""Historical k-anonymity (Definition 8) and anonymity-set computation.

Definition 8: a set ``R'`` of requests issued by user ``U`` satisfies
Historical k-anonymity when there exist ``k − 1`` PHLs of users other than
``U``, each LT-consistent with ``R'``.  Equivalently: from the service
provider's perspective at least ``k`` users (the requester plus ``k − 1``
others) "may have issued those requests".

This module also provides the classic single-request anonymity set used by
the [11]-style baselines: the users whose PHL places them inside one
request's ``⟨Area, TimeInterval⟩``.
"""

from __future__ import annotations

import math
from typing import Iterable, Mapping, Sequence

from repro.core.phl import PersonalHistory
from repro.core.requests import Request
from repro.geometry.region import STBox


def historical_anonymity_set(
    contexts: Sequence[STBox],
    histories: Mapping[int, PersonalHistory],
    exclude_user: int | None = None,
    store: object | None = None,
) -> list[int]:
    """Users whose PHL is LT-consistent with every context in ``contexts``.

    ``exclude_user`` (normally the true requester) is omitted from the
    result so the return value is directly comparable against ``k − 1``.
    An empty ``contexts`` sequence is vacuously consistent with every
    history.  Pass the owning store as ``store`` to let backends with a
    vectorized all-users scan
    (:meth:`repro.mod.store.TrajectoryStore.lt_consistent_users`)
    answer directly; the result is identical either way.
    """
    fast = getattr(store, "lt_consistent_users", None)
    if callable(fast):
        result: list[int] = fast(contexts, exclude_user=exclude_user)
        return result
    return [
        user_id
        for user_id, history in histories.items()
        if user_id != exclude_user
        and history.lt_consistent_with(contexts)
    ]


def satisfies_historical_k(
    requests: Sequence[Request],
    histories: Mapping[int, PersonalHistory],
    k: int,
    store: object | None = None,
) -> bool:
    """Definition 8 for a set of requests issued by one user.

    All requests must share a single ``user_id`` (they are "a subset of
    requests issued by the same user U"); a mixed set is a caller bug.
    ``store`` is forwarded to :func:`historical_anonymity_set`.
    """
    if k < 1:
        raise ValueError(f"k must be at least 1, got {k}")
    if not requests:
        return True
    users = {r.user_id for r in requests}
    if len(users) != 1:
        raise ValueError(
            "historical k-anonymity is defined for the requests of a "
            f"single user; got requests from users {sorted(users)}"
        )
    user = users.pop()
    contexts = [r.context for r in requests]
    consistent = historical_anonymity_set(
        contexts, histories, exclude_user=user, store=store
    )
    return len(consistent) >= k - 1


def request_anonymity_set(
    context: STBox,
    histories: Mapping[int, PersonalHistory],
    store: object | None = None,
) -> list[int]:
    """Users whose PHL intersects a single request context.

    This is the per-request anonymity set of the [11] model: everyone who
    was in ``Area`` during ``TimeInterval`` and therefore "may have issued
    the request".  The requester is included when their own PHL intersects
    (it always does for contexts produced by Algorithm 1).

    As with :func:`historical_anonymity_set`, passing the owning
    ``store`` lets a vectorized backend
    (:meth:`repro.mod.store.TrajectoryStore.users_in_box`) answer the
    membership scan in one batch; the result order still follows the
    ``histories`` mapping.
    """
    fast = getattr(store, "users_in_box", None)
    if callable(fast):
        members = fast(context)
        return [user_id for user_id in histories if user_id in members]
    return [
        user_id
        for user_id, history in histories.items()
        if history.visits_box(context)
    ]


def anonymity_entropy(set_sizes: Iterable[int]) -> float:
    """Shannon entropy (bits) of a uniform anonymity set, averaged.

    With ``m`` equally likely candidates the attacker's uncertainty is
    ``log2(m)`` bits; the mean over a batch of requests is a standard
    scalar summary used in the experiments.  Empty input yields 0.0, and
    sets of size 0 (impossible contexts) contribute 0 bits.
    """
    sizes = [s for s in set_sizes]
    if not sizes:
        return 0.0
    total = 0.0
    for size in sizes:
        if size > 0:
            total += math.log2(size)
    return total / len(sizes)
