"""Privacy policies: qualitative levels, profiles, and tolerance tables.

Section 3: users "can turn on and off a privacy protecting system which
has a simplified user interface with qualitative degrees of concern: low,
medium, high", applied uniformly or per service, while "more expert users
can have access to more involved rule-based policy specifications";
"qualitative privacy preferences provided by each user are translated by
the TS into specific parameters".

The two quantitative parameters of the framework (Section 5.3) are ``k``
(the anonymity value) and ``Θ`` (the linkability likelihood); the k′
schedule implements the Section 6.2 heuristic of starting with a larger
anonymity set and letting it shrink along the trace.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.core.generalization import ToleranceConstraint


class PrivacyLevel(enum.Enum):
    """The simplified three-level user interface of Section 3."""

    LOW = "low"
    MEDIUM = "medium"
    HIGH = "high"


class RiskAction(enum.Enum):
    """What to do when a user is "at risk of identification" (Section 6.1).

    The paper: the user is "notified about it so that he may refrain from
    sending sensitive information, disrupt the service, or take other
    actions" — modeled as either suppressing the request or forwarding it
    anyway (with the notification recorded).
    """

    SUPPRESS = "suppress"
    FORWARD = "forward"


@dataclass(frozen=True)
class PrivacyProfile:
    """The TS-side quantitative parameters for one user (or one level).

    ``k`` — required historical anonymity (Definition 8).
    ``theta`` — linkability likelihood bound for unlinking (Section 6.3).
    ``k_prime_initial`` / ``k_prime_decrement`` — the Section 6.2
    schedule: the anonymity requirement at the j-th generalized request of
    a trace is ``max(k, k_prime_initial − j · k_prime_decrement)``.
    """

    k: int
    theta: float = 0.5
    k_prime_initial: int | None = None
    k_prime_decrement: int = 1
    on_risk: RiskAction = RiskAction.SUPPRESS

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError(f"k must be at least 1, got {self.k}")
        if not 0 <= self.theta <= 1:
            raise ValueError(f"theta must be in [0, 1], got {self.theta}")
        if self.k_prime_initial is not None and self.k_prime_initial < self.k:
            raise ValueError(
                "k_prime_initial must be at least k "
                f"({self.k}), got {self.k_prime_initial}"
            )
        if self.k_prime_decrement < 0:
            raise ValueError("k_prime_decrement must be non-negative")

    def required_k_at_step(self, step: int) -> int:
        """Anonymity requirement at the ``step``-th generalized request.

        Step 0 is the request that matched the first LBQID element.
        Without a k′ schedule the requirement is a constant ``k``.
        """
        if step < 0:
            raise ValueError(f"step must be non-negative, got {step}")
        if self.k_prime_initial is None:
            return self.k
        return max(
            self.k, self.k_prime_initial - step * self.k_prime_decrement
        )

    @classmethod
    def from_level(cls, level: PrivacyLevel) -> "PrivacyProfile":
        """Translate a qualitative degree of concern into parameters.

        The mapping is the library default (the paper leaves it to the
        TS): low → k=2, medium → k=5 with a mild k′ schedule, high → k=10
        with a steep one and a strict Θ.
        """
        if level is PrivacyLevel.LOW:
            return cls(k=2, theta=0.8)
        if level is PrivacyLevel.MEDIUM:
            return cls(k=5, theta=0.5, k_prime_initial=8)
        return cls(k=10, theta=0.2, k_prime_initial=16, k_prime_decrement=2)


#: A rule maps (user_id, service) to a profile override, or None to pass.
PolicyRule = Callable[[int, str], PrivacyProfile | None]


class PolicyTable:
    """The TS's policy state: profiles per user, tolerances per service.

    Resolution order for a user's profile: rule-based overrides (first
    match wins), then the per-user profile, then the table default.
    """

    def __init__(
        self,
        default_profile: PrivacyProfile | None = None,
        default_tolerance: ToleranceConstraint | None = None,
    ) -> None:
        self.default_profile = default_profile or PrivacyProfile.from_level(
            PrivacyLevel.MEDIUM
        )
        self.default_tolerance = (
            default_tolerance or ToleranceConstraint.unbounded()
        )
        self._user_profiles: dict[int, PrivacyProfile] = {}
        self._service_tolerances: dict[str, ToleranceConstraint] = {}
        self._rules: list[PolicyRule] = []

    def set_user_profile(
        self, user_id: int, profile: PrivacyProfile | PrivacyLevel
    ) -> None:
        """Register a user's preference (profile or qualitative level)."""
        if isinstance(profile, PrivacyLevel):
            profile = PrivacyProfile.from_level(profile)
        self._user_profiles[user_id] = profile

    def set_service_tolerance(
        self, service: str, tolerance: ToleranceConstraint
    ) -> None:
        """Register a service's coarsest acceptable context."""
        self._service_tolerances[service] = tolerance

    def add_rule(self, rule: PolicyRule) -> None:
        """Append a rule-based override (evaluated before profiles)."""
        self._rules.append(rule)

    def profile_for(self, user_id: int, service: str) -> PrivacyProfile:
        """Resolve the profile governing one request."""
        for rule in self._rules:
            override = rule(user_id, service)
            if override is not None:
                return override
        return self._user_profiles.get(user_id, self.default_profile)

    def tolerance_for(self, service: str) -> ToleranceConstraint:
        """Resolve the tolerance constraint of a service."""
        return self._service_tolerances.get(service, self.default_tolerance)

    def services(self) -> Sequence[str]:
        """Services with explicit tolerance entries."""
        return tuple(self._service_tolerances)
