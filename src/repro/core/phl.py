"""Personal Histories of Locations and LT-consistency (Definitions 6–7).

The Trusted Server "not only stores … the set of requests that are issued
by each user, but also stores for each user the sequence of his/her
location updates" — the *Personal History of Locations* (PHL), a sequence
of 3D points ``⟨x, y, t⟩``.  Location updates arrive even when no request
is made, which is exactly why PHLs (not request logs) define the anonymity
sets of Definition 8.

Definition 7: a PHL is *LT-consistent* with a set of requests when, for
each request, some PHL point falls inside the request's generalized
``⟨Area, TimeInterval⟩`` context.
"""

from __future__ import annotations

import bisect
from typing import Iterable, Sequence

from repro.geometry.distance import DEFAULT_TIME_SCALE, st_distance
from repro.geometry.point import STPoint
from repro.geometry.region import STBox


class PersonalHistory:
    """The PHL of one user: location samples ordered by time.

    Points may be appended in any order; the history keeps itself sorted
    by timestamp so time-window scans stay logarithmic.

    .. note:: :class:`repro.mod.columnar.ColumnarHistory` is a
       columnar drop-in replacement pinned decision-equivalent to this
       class (identical results including distance tie-breaks and
       equal-timestamp insertion order).  Any semantic change here —
       in particular to :meth:`add`'s ``bisect_right`` placement or
       :meth:`closest_point_to`'s visit order and pruning — must be
       mirrored there; ``tests/mod/test_columnar_properties.py``
       enforces the equivalence.
    """

    def __init__(
        self, user_id: int, points: Iterable[STPoint] = ()
    ) -> None:
        self.user_id = user_id
        self._points: list[STPoint] = sorted(points, key=lambda p: p.t)
        self._times: list[float] = [p.t for p in self._points]

    def __len__(self) -> int:
        return len(self._points)

    def __iter__(self):
        return iter(self._points)

    def __getitem__(self, index: int) -> STPoint:
        return self._points[index]

    @property
    def points(self) -> Sequence[STPoint]:
        """The samples in timestamp order (read-only view)."""
        return tuple(self._points)

    def add(self, point: STPoint) -> None:
        """Record one location update."""
        index = bisect.bisect_right(self._times, point.t)
        self._points.insert(index, point)
        self._times.insert(index, point.t)

    def extend(self, points: Iterable[STPoint]) -> None:
        """Record several location updates."""
        for point in points:
            self.add(point)

    def points_between(self, t_start: float, t_end: float) -> list[STPoint]:
        """Samples with timestamps in the closed interval."""
        lo = bisect.bisect_left(self._times, t_start)
        hi = bisect.bisect_right(self._times, t_end)
        return self._points[lo:hi]

    def points_in_box(self, box: STBox) -> list[STPoint]:
        """Samples falling inside a spatio-temporal box."""
        return [
            p
            for p in self.points_between(box.interval.start, box.interval.end)
            if box.rect.contains(p.point)
        ]

    def visits_box(self, box: STBox) -> bool:
        """Whether any sample falls inside the box (one request's test
        for Definition 7)."""
        return any(
            box.rect.contains(p.point)
            for p in self.points_between(box.interval.start, box.interval.end)
        )

    def lt_consistent_with(self, contexts: Iterable[STBox]) -> bool:
        """Definition 7: LT-consistency with a set of request contexts."""
        return all(self.visits_box(context) for context in contexts)

    def closest_point_to(
        self, target: STPoint, time_scale: float = DEFAULT_TIME_SCALE
    ) -> STPoint | None:
        """The PHL sample nearest to ``target`` in space-time.

        This is the per-user step of Algorithm 1 line 2 ("find the 3D
        point in its PHL closest to ⟨x, y, t⟩").  Returns ``None`` for an
        empty history.

        The scan is pruned with the temporal axis: samples are visited
        outward from ``target.t`` and the scan stops once the time gap
        alone (scaled by ``time_scale``) exceeds the best distance so far.
        """
        if not self._points:
            return None
        center = bisect.bisect_left(self._times, target.t)
        best: STPoint | None = None
        best_distance = float("inf")
        left = center - 1
        right = center
        while left >= 0 or right < len(self._points):
            candidates = []
            if right < len(self._points):
                gap = (self._times[right] - target.t) * time_scale
                if gap <= best_distance:
                    candidates.append(self._points[right])
                    right += 1
                else:
                    right = len(self._points)
            if left >= 0:
                gap = (target.t - self._times[left]) * time_scale
                if gap <= best_distance:
                    candidates.append(self._points[left])
                    left -= 1
                else:
                    left = -1
            if not candidates:
                break
            for candidate in candidates:
                distance = st_distance(candidate, target, time_scale)
                if distance < best_distance:
                    best = candidate
                    best_distance = distance
        return best

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PersonalHistory(user_id={self.user_id}, "
            f"samples={len(self._points)})"
        )
