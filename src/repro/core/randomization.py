"""Randomized context placement (Section 7's open issue).

"In addition, randomization should be used as part of the TS strategy to
prevent inference attacks."

The inference attack randomization defeats: Algorithm 1's box is the
*bounding* box of the request point and the selected users' PHL points,
and tolerance shrinking re-centers on the requester — so the requester's
exact location sits at a statistically predictable position inside the
forwarded ``⟨Area, TimeInterval⟩`` (near the center after a shrink, on
the boundary otherwise).  An SP estimating "user = box center" recovers
much of the precision generalization was supposed to destroy.

:class:`BoxRandomizer` expands a certified box by random, independently
split margins so the requester's relative position inside the final
context is uniform.  Expansion only ever *grows* the box, so every
selected user's PHL point stays inside — LT-consistency and therefore
Historical k-anonymity are preserved by construction — and the expansion
budget is capped by the service's tolerance constraint, so QoS bounds
still hold.
"""

from __future__ import annotations

import numpy as np

from repro.core.generalization import ToleranceConstraint
from repro.geometry.point import STPoint
from repro.geometry.region import Interval, Rect, STBox


class BoxRandomizer:
    """Randomly re-place a generalized context within its tolerance.

    ``slack`` in [0, 1] is the fraction of the remaining tolerance
    budget (per axis) the randomizer may consume; 1.0 uses the whole
    budget, 0.0 disables expansion.
    """

    def __init__(
        self, rng: np.random.Generator, slack: float = 1.0
    ) -> None:
        if not 0 <= slack <= 1:
            raise ValueError(f"slack must be in [0, 1], got {slack}")
        self._rng = rng
        self.slack = slack

    def randomize(
        self,
        box: STBox,
        anchor: STPoint,
        tolerance: ToleranceConstraint,
    ) -> STBox:
        """Expand ``box`` by random margins within the tolerance budget.

        ``anchor`` (the exact request point) is contained before and
        after; each axis draws a total extra extent uniformly from the
        available budget and splits it uniformly between the two sides,
        which makes the anchor's relative position uniform when the
        original box is small relative to the budget.
        """
        if not box.contains(anchor):
            raise ValueError("anchor must lie inside the box")
        x_min, x_max = self._expand_axis(
            box.rect.x_min, box.rect.x_max, tolerance.max_width
        )
        y_min, y_max = self._expand_axis(
            box.rect.y_min, box.rect.y_max, tolerance.max_height
        )
        t_min, t_max = self._expand_axis(
            box.interval.start, box.interval.end, tolerance.max_duration
        )
        return STBox(
            Rect(x_min, y_min, x_max, y_max), Interval(t_min, t_max)
        )

    def _expand_axis(
        self, lo: float, hi: float, max_extent: float
    ) -> tuple[float, float]:
        budget = max_extent - (hi - lo)
        if budget <= 0 or not np.isfinite(budget):
            return lo, hi
        extra = self._rng.uniform(0.0, self.slack * budget)
        left = self._rng.uniform(0.0, extra)
        return lo - left, hi + (extra - left)
