"""Service requests.

Section 3 of the paper: service providers receive requests of the form
``(msgid, UserPseudonym, Area, TimeInterval, Data)`` while the Trusted
Server additionally knows "the exact point and exact time when the user
issued the request".

:class:`Request` is the TS-side record carrying both views; ground-truth
fields (``user_id``, ``location``) must never be read by attacker or
service-provider code.  :meth:`Request.sp_view` produces the
:class:`SPRequest` projection containing only what crosses the trust
boundary, and all adversary modules in :mod:`repro.attack` operate on
:class:`SPRequest` exclusively.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Mapping

from repro.geometry.point import STPoint
from repro.geometry.region import STBox

_EMPTY_DATA: Mapping[str, object] = MappingProxyType({})


@dataclass(frozen=True)
class SPRequest:
    """A request as observed by a service provider.

    This is everything an attacker sitting at (or colluding with) the SP
    can see: an opaque message id, the pseudonym, the generalized
    spatio-temporal context, the service name, and the request payload.
    """

    msgid: int
    pseudonym: str
    context: STBox
    service: str = "default"
    data: Mapping[str, object] = field(default_factory=lambda: _EMPTY_DATA)


@dataclass(frozen=True)
class Request:
    """The Trusted Server's full record of one service request.

    ``location`` is the exact ``⟨x, y, t⟩`` of the user at request time;
    ``context`` is the (possibly generalized) box forwarded to the SP.  A
    freshly issued request starts with a degenerate context equal to its
    exact location; the anonymizer replaces it before forwarding.
    """

    msgid: int
    user_id: int
    pseudonym: str
    location: STPoint
    context: STBox
    service: str = "default"
    data: Mapping[str, object] = field(default_factory=lambda: _EMPTY_DATA)

    @classmethod
    def issue(
        cls,
        msgid: int,
        user_id: int,
        pseudonym: str,
        location: STPoint,
        service: str = "default",
        data: Mapping[str, object] | None = None,
    ) -> "Request":
        """Create a request whose context is its exact location."""
        return cls(
            msgid=msgid,
            user_id=user_id,
            pseudonym=pseudonym,
            location=location,
            context=STBox.from_st_point(location),
            service=service,
            data=_EMPTY_DATA if data is None else data,
        )

    @property
    def t(self) -> float:
        """Exact issue time of the request."""
        return self.location.t

    def with_context(self, context: STBox) -> "Request":
        """Copy of this request carrying a generalized context.

        The exact location must lie inside the new context; Algorithm 1
        always produces boxes containing the request point, and this guard
        catches any caller that would break that invariant.
        """
        if not context.contains(self.location):
            raise ValueError(
                "generalized context does not contain the exact request "
                f"location {self.location}"
            )
        return Request(
            msgid=self.msgid,
            user_id=self.user_id,
            pseudonym=self.pseudonym,
            location=self.location,
            context=context,
            service=self.service,
            data=self.data,
        )

    def with_pseudonym(self, pseudonym: str) -> "Request":
        """Copy of this request under a different pseudonym."""
        return Request(
            msgid=self.msgid,
            user_id=self.user_id,
            pseudonym=pseudonym,
            location=self.location,
            context=self.context,
            service=self.service,
            data=self.data,
        )

    def sp_view(self) -> SPRequest:
        """Project away ground truth, leaving what the SP observes."""
        return SPRequest(
            msgid=self.msgid,
            pseudonym=self.pseudonym,
            context=self.context,
            service=self.service,
            data=self.data,
        )
