"""Location-Based Quasi-Identifiers (Definition 1).

An LBQID is "a spatio-temporal pattern specified by a sequence of
spatio-temporal constraints each one defining an area and a time span, and
by a recurrence formula".  Each element is ``⟨Area, U-TimeInterval⟩``; the
recurrence formula constrains how often the whole sequence must be
observed (see :mod:`repro.granularity.recurrence`).

The paper's Example 2 — the home/office commute pattern — is provided by
:func:`commute_lbqid` and used throughout the examples and benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.geometry.point import STPoint
from repro.geometry.region import Rect
from repro.granularity.recurrence import RecurrenceFormula
from repro.granularity.unanchored import UnanchoredInterval


@dataclass(frozen=True)
class LBQIDElement:
    """One ``⟨Area, U-TimeInterval⟩`` constraint of an LBQID.

    ``area`` is a rectangle in the plane; ``window`` a daily-recurring
    unanchored interval (Definition 1).
    """

    area: Rect
    window: UnanchoredInterval
    label: str = ""

    def matches(self, location: STPoint) -> bool:
        """Definition 2: whether an exact request location matches.

        True when the area contains ``⟨x, y⟩`` and the instant ``t`` falls
        in one of the intervals denoted by the unanchored window.
        """
        return self.area.contains(location.point) and self.window.contains(
            location.t
        )


@dataclass(frozen=True)
class LBQID:
    """A Location-Based Quasi-Identifier.

    ``elements`` must be non-empty; ``recurrence`` defaults to the empty
    formula (equivalent to ``1.`` — a single occurrence of the sequence
    already identifies, per Section 4).
    """

    name: str
    elements: tuple[LBQIDElement, ...]
    recurrence: RecurrenceFormula = RecurrenceFormula()

    def __init__(
        self,
        name: str,
        elements: Sequence[LBQIDElement],
        recurrence: RecurrenceFormula | str = RecurrenceFormula(),
    ) -> None:
        if not elements:
            raise ValueError("an LBQID needs at least one element")
        if isinstance(recurrence, str):
            recurrence = RecurrenceFormula.parse(recurrence)
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "elements", tuple(elements))
        object.__setattr__(self, "recurrence", recurrence.normalized())

    def __len__(self) -> int:
        return len(self.elements)

    def element_matching(self, location: STPoint) -> int | None:
        """Index of the first element the location matches, if any."""
        for i, element in enumerate(self.elements):
            if element.matches(location):
                return i
        return None

    def __str__(self) -> str:
        parts = " -> ".join(
            element.label or f"E{i}" for i, element in enumerate(self.elements)
        )
        return f"LBQID {self.name!r}: {parts} @ {self.recurrence}"


def commute_lbqid(
    home: Rect,
    office: Rect,
    name: str = "home-office-commute",
    recurrence: str = "3.Weekdays * 2.Weeks",
) -> LBQID:
    """The paper's Example 2 pattern for given home and office areas.

    ``AreaCondominium [7am,8am] -> AreaOfficeBldg [8am,9am] ->
    AreaOfficeBldg [4pm,6pm] -> AreaCondominium [5pm,7pm]`` with
    recurrence ``3.Weekdays * 2.Weeks``.
    """
    return LBQID(
        name,
        [
            LBQIDElement(
                home, UnanchoredInterval.from_hours(7, 8), "home-morning"
            ),
            LBQIDElement(
                office, UnanchoredInterval.from_hours(8, 9), "office-arrive"
            ),
            LBQIDElement(
                office, UnanchoredInterval.from_hours(16, 18), "office-leave"
            ),
            LBQIDElement(
                home, UnanchoredInterval.from_hours(17, 19), "home-evening"
            ),
        ],
        recurrence,
    )
