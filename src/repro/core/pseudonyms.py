"""Pseudonym lifecycle management.

Section 3: "UserPseudonym is used to hide the user identity while allowing
the SP to authenticate the user" and to connect multiple requests from the
same user; Section 6 changes pseudonyms to *unlink* request histories.

Pseudonyms are opaque strings drawn from a global counter; they carry no
information about the user id, and "pseudonyms are not shared by different
individuals" (Section 5.2) by construction.
"""

from __future__ import annotations


class PseudonymManager:
    """Issues and rotates per-user pseudonyms."""

    def __init__(self, prefix: str = "p") -> None:
        self._prefix = prefix
        self._counter = 0
        self._current: dict[int, str] = {}
        self._issued_to: dict[str, int] = {}

    def current(self, user_id: int) -> str:
        """The user's active pseudonym, created on first use."""
        pseudonym = self._current.get(user_id)
        if pseudonym is None:
            pseudonym = self._issue(user_id)
        return pseudonym

    def rotate(self, user_id: int) -> str:
        """Replace the user's pseudonym (the unlinking action's step 1)."""
        return self._issue(user_id)

    def owner_of(self, pseudonym: str) -> int | None:
        """Ground-truth owner of a pseudonym (TS/evaluation side only)."""
        return self._issued_to.get(pseudonym)

    def pseudonyms_of(self, user_id: int) -> list[str]:
        """All pseudonyms ever issued to a user, in issue order."""
        return [
            pseudonym
            for pseudonym, owner in self._issued_to.items()
            if owner == user_id
        ]

    @property
    def issued_count(self) -> int:
        """Total pseudonyms issued across all users."""
        return self._counter

    def _issue(self, user_id: int) -> str:
        pseudonym = f"{self._prefix}{self._counter:08d}"
        self._counter += 1
        self._current[user_id] = pseudonym
        self._issued_to[pseudonym] = user_id
        return pseudonym
