"""The spatio-temporal generalization procedure (Algorithm 1).

Algorithm 1 has two branches:

* **initial element** (lines 5–6): compute the smallest spatio-temporal
  box containing the request point and "crossed by k trajectories (each
  one for a different user)", and remember those users' ids.  We count the
  requester as one of the k (Definition 8 needs k−1 *other* LT-consistent
  PHLs), so k−1 other users are selected — the ones whose nearest PHL
  sample is closest to the request point.
* **subsequent elements** (lines 2–3): for each remembered user, find the
  PHL point closest to the new request point and bound the box around
  those points (plus the request point itself).

Lines 8–12 then test the service's *tolerance constraints*: if the box is
too coarse for the service to remain useful it is "uniformly reduced to
satisfy the tolerance constraints" around the true request location and
``HK-anonymity := False`` is reported.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geometry.distance import st_distance
from repro.geometry.point import STPoint
from repro.geometry.region import Interval, Rect, STBox
from repro.mod.store import TrajectoryStore


@dataclass(frozen=True)
class ToleranceConstraint:
    """Coarsest context a service still works with (Section 6.1).

    "Each location-based service has some tolerance constraints that
    define the coarsest spatial and temporal granularity for the service
    to still be useful" — e.g. a few square miles and a few minutes for a
    closest-hospital service, much coarser for localized news.
    """

    max_width: float
    max_height: float
    max_duration: float

    def __post_init__(self) -> None:
        if min(self.max_width, self.max_height, self.max_duration) < 0:
            raise ValueError("tolerance bounds must be non-negative")

    @classmethod
    def square(cls, side: float, max_duration: float) -> (
        "ToleranceConstraint"
    ):
        """Square spatial tolerance of the given side length."""
        return cls(side, side, max_duration)

    @classmethod
    def unbounded(cls) -> "ToleranceConstraint":
        """No constraint — any generalization is acceptable."""
        inf = float("inf")
        return cls(inf, inf, inf)

    def satisfied_by(self, box: STBox) -> bool:
        """Algorithm 1 line 8: does the box respect the constraints?"""
        return (
            box.rect.width <= self.max_width
            and box.rect.height <= self.max_height
            and box.interval.duration <= self.max_duration
        )

    def shrink(self, box: STBox, anchor: STPoint) -> STBox:
        """Algorithm 1 line 12: uniformly reduce around the true location.

        The result satisfies the constraints and still contains
        ``anchor`` (the service must receive a context containing the
        real request).
        """
        rect = box.rect.clamped_around(
            anchor.point, self.max_width, self.max_height
        )
        interval = box.interval.clamped_around(anchor.t, self.max_duration)
        return STBox(rect, interval)


@dataclass(frozen=True)
class GeneralizationResult:
    """Output of one Algorithm 1 invocation.

    ``hk_anonymity`` is the algorithm's boolean output: True when enough
    distinct other users were found *and* the bounding box respected the
    tolerance constraints.  ``anonymity_ids`` are the other users whose
    selected PHL points lie inside the *final* box (after any shrinking),
    i.e. the users LT-consistent with this context by construction.
    ``selected_ids`` are the users chosen before the tolerance test — the
    set Algorithm 1 line 6 stores for reuse at subsequent elements.
    """

    box: STBox
    hk_anonymity: bool
    anonymity_ids: tuple[int, ...]
    selected_ids: tuple[int, ...]


class SpatioTemporalGeneralizer:
    """Algorithm 1 bound to a trajectory store."""

    def __init__(self, store: TrajectoryStore) -> None:
        self.store = store

    def generalize_initial(
        self,
        location: STPoint,
        k: int,
        tolerance: ToleranceConstraint,
        requester: int,
    ) -> GeneralizationResult:
        """Lines 5–6: fresh selection of the anonymity set.

        ``k`` is the total anonymity level including the requester, so
        ``k − 1`` other users are selected.  ``requester`` is excluded
        from the candidate set.
        """
        if k < 1:
            raise ValueError(f"k must be at least 1, got {k}")
        neighbours = self.store.nearest_users(
            location, k - 1, exclude={requester}
        )
        selected = {
            user_id: point for user_id, point, _distance in neighbours
        }
        enough_users = len(selected) >= k - 1
        return self._finish(location, selected, tolerance, enough_users)

    def generalize_subsequent(
        self,
        location: STPoint,
        user_ids: tuple[int, ...] | list[int],
        tolerance: ToleranceConstraint,
        required: int | None = None,
    ) -> GeneralizationResult:
        """Lines 2–3: reuse the anonymity set chosen at the first element.

        ``required`` implements the Section 6.2 k′-decrement heuristic:
        when fewer users than were originally stored are needed at this
        step, only the ``required`` stored users whose closest PHL points
        are nearest to the new request are bounded, keeping the box (and
        the tolerance risk) small.  Defaults to all of ``user_ids``.
        """
        if required is None:
            required = len(user_ids)
        candidates: list[tuple[float, int, STPoint]] = []
        for user_id, closest in self.store.closest_points(
            user_ids, location
        ):
            distance = st_distance(
                closest, location, self.store.time_scale
            )
            candidates.append((distance, user_id, closest))
        candidates.sort()
        selected = {
            user_id: point
            for _distance, user_id, point in candidates[:required]
        }
        enough_users = len(selected) >= required
        return self._finish(location, selected, tolerance, enough_users)

    def _finish(
        self,
        location: STPoint,
        selected: dict[int, STPoint],
        tolerance: ToleranceConstraint,
        enough_users: bool,
    ) -> GeneralizationResult:
        """Lines 3 and 8–12: bound, test tolerance, shrink on failure."""
        box = STBox.bounding_st([location, *selected.values()])
        within_tolerance = tolerance.satisfied_by(box)
        if not within_tolerance:
            box = tolerance.shrink(box, location)
        anonymity_ids = tuple(
            sorted(
                user_id
                for user_id, point in selected.items()
                if box.contains(point)
            )
        )
        return GeneralizationResult(
            box=box,
            hk_anonymity=within_tolerance and enough_users,
            anonymity_ids=anonymity_ids,
            selected_ids=tuple(sorted(selected)),
        )


def default_context(
    location: STPoint, cloak: ToleranceConstraint | None = None
) -> STBox:
    """Context for requests not matching any LBQID element.

    The Section 6.1 strategy only generalizes requests that advance an
    LBQID; everything else is forwarded with its exact location (the
    degenerate box) or, when ``cloak`` is given, with a fixed-size box at
    the tolerance bound — a conservative deployment choice several
    experiments compare against.
    """
    if cloak is None:
        return STBox.from_st_point(location)
    rect = Rect.from_center(
        location.point,
        cloak.max_width,
        cloak.max_height,
    )
    half = cloak.max_duration / 2.0
    return STBox(rect, Interval(location.t - half, location.t + half))
