"""The Trusted Server's privacy-preservation strategy (Section 6.1).

For every incoming request the TS:

1. monitors the request against the user's LBQIDs (the Section 4 timed
   automaton); when the request matches the first element of an LBQID, or
   extends a partially matched pattern under the temporal constraints, its
   exact ``⟨x, y, t⟩`` is **generalized** with Algorithm 1 so that the
   forwarded context preserves Historical k-anonymity of the requests
   matched so far;
2. when generalization *fails* (the box needed for k users violates the
   service's tolerance constraints), the TS tries to **unlink** future
   requests by changing the user's pseudonym (Section 6.3); on success all
   partially matched patterns under the old pseudonym are reset;
3. when unlinking also fails, the user is **at risk of identification**
   and is notified; depending on policy the request is suppressed or
   forwarded anyway.

Anonymity-set scope — an interpretive choice the sketched Algorithm 1
leaves open (documented in DESIGN.md and measured in benchmark E5):

* ``AnonymitySetScope.PER_LBQID`` (default): the k users are selected once
  per (user, LBQID) — at the first generalized request — and reused for
  *every* later request matching that LBQID until an unlinking reset.
  This is the reading under which Theorem 1 holds for the full matched
  request set, because one fixed set of PHLs stays LT-consistent with all
  forwarded contexts.
* ``AnonymitySetScope.PER_OBSERVATION``: the k users are reselected at
  each sequence observation's first element (the literal reading of
  Algorithm 1's input/output signature).  Contexts are smaller, but the
  users consistent with the *union* of contexts may fall below k.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.core.generalization import (
    GeneralizationResult,
    SpatioTemporalGeneralizer,
    ToleranceConstraint,
    default_context,
)
from repro.core.lbqid import LBQID
from repro.core.matching import LBQIDMonitor, MatchEvent, PartialMatch
from repro.core.policy import PolicyTable, PrivacyProfile, RiskAction
from repro.core.pseudonyms import PseudonymManager
from repro.core.randomization import BoxRandomizer
from repro.core.requests import Request, SPRequest
from repro.core.unlinking import NeverUnlink, UnlinkingProvider
from repro.geometry.point import STPoint
from repro.mod.store import TrajectoryStore
from repro.obs.config import Telemetry, TelemetryConfig, resolve_telemetry


class Decision(enum.Enum):
    """What the TS did with one request."""

    #: No LBQID element matched; forwarded with the default context.
    FORWARDED = "forwarded"
    #: Matched an LBQID element; forwarded with an Algorithm 1 context
    #: that preserved historical k-anonymity.
    GENERALIZED = "generalized"
    #: Generalization failed; unlinking succeeded before a complete LBQID
    #: was matched.  The request is forwarded under the *old* pseudonym
    #: (unlinking protects "future requests from the previous ones"),
    #: which is then retired: the old pseudonym's request group is frozen
    #: with the LBQID incomplete, so Theorem 1's premise can never hold
    #: for it.
    UNLINKED = "unlinked"
    #: Generalization and unlinking both failed; user notified and the
    #: request forwarded anyway (policy ``RiskAction.FORWARD``).
    AT_RISK_FORWARDED = "at_risk_forwarded"
    #: Generalization and unlinking both failed; user notified and the
    #: request suppressed (policy ``RiskAction.SUPPRESS``).
    SUPPRESSED = "suppressed"
    #: Request fell inside the post-unlinking quiet period — the
    #: Section 6.3 mix-zone mechanic of "temporarily disabling the use
    #: of the service … for the time sufficient to confuse the SP".
    QUIET = "quiet"


class AnonymitySetScope(enum.Enum):
    """When Algorithm 1 reselects the k anonymity users (see module doc)."""

    PER_LBQID = "per_lbqid"
    PER_OBSERVATION = "per_observation"


@dataclass(frozen=True)
class AnonymizerEvent:
    """Audit record of one processed request (TS-side, ground truth).

    ``request`` carries the final outgoing context and pseudonym (for a
    suppressed request: the context that *would* have been sent).
    ``hk_anonymity`` is Algorithm 1's boolean output, ``None`` when no
    generalization ran.  ``lbqid_matched`` flags that the LBQID's
    recurrence formula became satisfied at this request.
    """

    request: Request
    decision: Decision
    forwarded: bool
    lbqid_name: str | None = None
    hk_anonymity: bool | None = None
    lbqid_matched: bool = False
    generalization: GeneralizationResult | None = None
    step: int | None = None
    required_k: int | None = None
    #: Whether this request triggered a pseudonym rotation (successful
    #: unlinking), regardless of whether the request itself was forwarded.
    pseudonym_rotated: bool = False


@dataclass
class _LBQIDState:
    """Per-(user, LBQID) tracking state."""

    monitor: LBQIDMonitor
    #: Anonymity set selected at the first generalized request
    #: (PER_LBQID scope); None until selected or after a reset.
    anonymity_ids: tuple[int, ...] | None = None
    #: Number of requests generalized for this LBQID since the last
    #: reset; drives the k' schedule.
    steps: int = 0


class TrustedAnonymizer:
    """The TS-side engine tying monitors, Algorithm 1 and unlinking together.

    Typical use::

        store = TrajectoryStore()
        policy = PolicyTable(...)
        ts = TrustedAnonymizer(store, policy, unlinker=AlwaysUnlink())
        ts.register_lbqid(user_id, commute_lbqid(home, office))
        ...
        ts.report_location(user_id, point)       # location updates
        event = ts.request(user_id, point, "poi")  # a service request

    Ground-truth audit events accumulate in :attr:`events`; the
    SP-visible stream is :meth:`sp_log`.
    """

    def __init__(
        self,
        store: TrajectoryStore,
        policy: PolicyTable | None = None,
        unlinker: UnlinkingProvider | None = None,
        scope: AnonymitySetScope = AnonymitySetScope.PER_LBQID,
        default_cloak: ToleranceConstraint | None = None,
        randomizer: "BoxRandomizer | None" = None,
        quiet_period: float = 0.0,
        telemetry: "Telemetry | TelemetryConfig | None" = None,
    ) -> None:
        if quiet_period < 0:
            raise ValueError(
                f"quiet_period must be non-negative, got {quiet_period}"
            )
        self.store = store
        self.policy = policy or PolicyTable()
        self.unlinker = unlinker or NeverUnlink()
        self.scope = scope
        self.default_cloak = default_cloak
        #: Optional Section 7 randomization: certified contexts are
        #: re-placed at random within the tolerance budget before
        #: forwarding, defeating center-bias inference (bench E13).
        self.randomizer = randomizer
        #: Seconds of service silence after a pseudonym rotation — the
        #: mix-zone "no service inside the zone" mechanic.  Requests in
        #: the window are suppressed so the SP sees a gap, not a
        #: continuous trajectory, across the rotation (bench E16).
        self.quiet_period = quiet_period
        self._quiet_until: dict[int, float] = {}
        #: Per-request telemetry (spans, decision counters, latency and
        #: anonymity-set histograms).  Defaults to the disabled no-op
        #: singleton, whose every call costs a single branch.
        self.telemetry = resolve_telemetry(telemetry)
        self.generalizer = SpatioTemporalGeneralizer(store)
        self.pseudonyms = PseudonymManager()
        self.events: list[AnonymizerEvent] = []
        self._states: dict[int, list[_LBQIDState]] = {}
        self._msgid = 0

    # ------------------------------------------------------------------
    # registration and location updates
    # ------------------------------------------------------------------

    def register_lbqid(self, user_id: int, lbqid: LBQID) -> None:
        """Attach an LBQID specification for a user (Section 6.1 step 1)."""
        self._states.setdefault(user_id, []).append(
            _LBQIDState(
                monitor=LBQIDMonitor(lbqid, telemetry=self.telemetry)
            )
        )

    def register_lbqids(
        self, user_id: int, lbqids: Iterable[LBQID]
    ) -> None:
        """Attach several LBQIDs for a user."""
        for lbqid in lbqids:
            self.register_lbqid(user_id, lbqid)

    def report_location(self, user_id: int, location: STPoint) -> None:
        """Ingest a location update that is not a service request.

        "A location update may be received by the TS even if the user did
        not make a request when being at that location" — these updates
        populate the PHLs that define everyone's anonymity sets.
        """
        self.store.add_point(user_id, location)
        self.telemetry.count("ts.location_updates")

    # ------------------------------------------------------------------
    # request processing
    # ------------------------------------------------------------------

    def request(
        self,
        user_id: int,
        location: STPoint,
        service: str = "default",
        data: Mapping[str, object] | None = None,
    ) -> AnonymizerEvent:
        """Process one service request end to end.

        Returns the audit event; the outgoing SP request (if forwarded)
        is appended to the log returned by :meth:`sp_log`.
        """
        telemetry = self.telemetry
        if not telemetry.enabled:
            return self._process(user_id, location, service, data)
        with telemetry.span(
            "ts.request", user_id=user_id, service=service
        ) as span:
            with telemetry.timer("ts.request_latency_ms"):
                event = self._process(user_id, location, service, data)
            span.annotate(decision=event.decision.value)
        self._record(event, telemetry)
        return event

    def _record(self, event: AnonymizerEvent, telemetry: Telemetry) -> None:
        """Per-request metrics and the streaming decision event.

        The ``ts.decision`` event mirrors the audit record for online
        consumers (:class:`~repro.obs.slo.PrivacyMonitor`, JSONL
        exports).  It carries the TS-side ground-truth ``user_id``
        alongside the pseudonym — telemetry stays inside the trust
        boundary, so exported JSONL files must be treated as
        TS-confidential.
        """
        telemetry.count("ts.requests")
        telemetry.count("ts.decisions", decision=event.decision.value)
        if event.pseudonym_rotated:
            telemetry.count("ts.pseudonym_rotations")
        result = event.generalization
        if result is not None:
            telemetry.observe(
                "ts.anonymity_set_size", len(result.anonymity_ids)
            )
            telemetry.observe("ts.box_area_m2", result.box.rect.area)
            telemetry.observe(
                "ts.box_duration_s", result.box.interval.duration
            )
        context = event.request.context
        telemetry.event(
            "ts.decision",
            t=event.request.t,
            user_id=event.request.user_id,
            pseudonym=event.request.pseudonym,
            service=event.request.service,
            decision=event.decision.value,
            forwarded=event.forwarded,
            lbqid=event.lbqid_name,
            hk=event.hk_anonymity,
            step=event.step,
            required_k=event.required_k,
            rotated=event.pseudonym_rotated,
            context=(
                context.rect.x_min,
                context.rect.y_min,
                context.rect.x_max,
                context.rect.y_max,
                context.interval.start,
                context.interval.end,
            ),
        )

    def _process(
        self,
        user_id: int,
        location: STPoint,
        service: str,
        data: Mapping[str, object] | None,
    ) -> AnonymizerEvent:
        """The Section 6.1 decision pipeline for one request."""
        # Every request is also a location update: "for each request r_i
        # there must be an element in the PHL of User(r_i)".
        self.store.add_point(user_id, location)
        self.telemetry.count("ts.location_updates")
        self._msgid += 1
        request = Request.issue(
            msgid=self._msgid,
            user_id=user_id,
            pseudonym=self.pseudonyms.current(user_id),
            location=location,
            service=service,
            data=data,
        )
        profile = self.policy.profile_for(user_id, service)
        tolerance = self.policy.tolerance_for(service)

        quiet_until = self._quiet_until.get(user_id)
        if quiet_until is not None and location.t < quiet_until:
            # Inside the post-rotation quiet window: the service is
            # disabled so the SP cannot bridge the pseudonym change by
            # movement continuity.  The location update was ingested;
            # nothing crosses the trust boundary.
            event = AnonymizerEvent(
                request=request,
                decision=Decision.QUIET,
                forwarded=False,
            )
            self.events.append(event)
            return event

        state, match = self._feed_monitors(user_id, location)
        if state is None or match is None:
            context = default_context(location, self.default_cloak)
            event = AnonymizerEvent(
                request=request.with_context(context),
                decision=Decision.FORWARDED,
                forwarded=True,
            )
            self.events.append(event)
            return event

        step = state.steps
        required_k = profile.required_k_at_step(step)
        result = self._generalize(
            user_id, state, match, location, profile, tolerance
        )
        state.steps += 1
        lbqid_name = state.monitor.lbqid.name

        if result.hk_anonymity:
            context = result.box
            if self.randomizer is not None:
                context = self.randomizer.randomize(
                    context, location, tolerance
                )
            event = AnonymizerEvent(
                request=request.with_context(context),
                decision=Decision.GENERALIZED,
                forwarded=True,
                lbqid_name=lbqid_name,
                hk_anonymity=True,
                lbqid_matched=match.lbqid_matched,
                generalization=result,
                step=step,
                required_k=required_k,
            )
            self.events.append(event)
            return event

        # Generalization failed: try to unlink (Section 6.1 step 2).
        # Unlinking only helps "before a complete LBQID is matched" — if
        # the pattern is already complete (possibly completed by this very
        # request), forwarding an under-generalized context would break
        # Definition 8 for a matched, link-connected set, so the request
        # falls through to the at-risk handling even when the pseudonym
        # can still be rotated to protect the future.
        outcome = self.unlinker.attempt_unlink(user_id, location)
        too_late = state.monitor.matched
        rotated = False
        if outcome.success:
            self.pseudonyms.rotate(user_id)
            self._reset_user(user_id)
            rotated = True
            if self.quiet_period > 0:
                self._quiet_until[user_id] = (
                    location.t + self.quiet_period
                )
            if not too_late:
                # Forward under the old pseudonym (already on `request`);
                # that pseudonym is now retired with the LBQID incomplete.
                event = AnonymizerEvent(
                    request=request.with_context(result.box),
                    decision=Decision.UNLINKED,
                    forwarded=True,
                    lbqid_name=lbqid_name,
                    hk_anonymity=False,
                    lbqid_matched=match.lbqid_matched,
                    generalization=result,
                    step=step,
                    required_k=required_k,
                    pseudonym_rotated=True,
                )
                self.events.append(event)
                return event

        # The user is at risk of identification: notify, then suppress or
        # forward according to policy.
        suppress = profile.on_risk is RiskAction.SUPPRESS
        event = AnonymizerEvent(
            request=request.with_context(result.box),
            decision=(
                Decision.SUPPRESSED
                if suppress
                else Decision.AT_RISK_FORWARDED
            ),
            forwarded=not suppress,
            lbqid_name=lbqid_name,
            hk_anonymity=False,
            lbqid_matched=match.lbqid_matched,
            generalization=result,
            step=step,
            required_k=required_k,
            pseudonym_rotated=rotated,
        )
        self.events.append(event)
        return event

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _feed_monitors(
        self, user_id: int, location: STPoint
    ) -> tuple[_LBQIDState | None, MatchEvent | None]:
        """Feed the location to every monitor of the user.

        Returns the state whose monitor the request matched, per the
        paper's simplifying assumption "each request can match an element
        in only one of the LBQIDs defined for a certain user" — with
        several candidates the most-advanced partial wins.
        """
        matched: list[tuple[int, _LBQIDState, MatchEvent]] = []
        for state in self._states.get(user_id, ()):  # feed them all
            event = state.monitor.feed(location)
            if event.matched_any_element:
                progress = max(
                    (p.next_index for p in event.advanced), default=1
                )
                matched.append((progress, state, event))
        if not matched:
            return None, None
        matched.sort(key=lambda item: item[0], reverse=True)
        _progress, state, event = matched[0]
        return state, event

    def _generalize(
        self,
        user_id: int,
        state: _LBQIDState,
        match: MatchEvent,
        location: STPoint,
        profile: PrivacyProfile,
        tolerance: ToleranceConstraint,
    ) -> GeneralizationResult:
        """Run the right Algorithm 1 branch for this match."""
        step = state.steps
        required_k = profile.required_k_at_step(step)
        initial_k = profile.required_k_at_step(0)

        if self.scope is AnonymitySetScope.PER_LBQID:
            if state.anonymity_ids is None:
                result = self.generalizer.generalize_initial(
                    location, initial_k, tolerance, requester=user_id
                )
                if result.hk_anonymity:
                    # Cache the set only when the selection succeeded, so
                    # a failed attempt is retried from scratch next time
                    # (new candidates may have appeared by then).
                    state.anonymity_ids = result.selected_ids
                return result
            result = self.generalizer.generalize_subsequent(
                location,
                state.anonymity_ids,
                tolerance,
                required=max(required_k - 1, 0),
            )
            if result.hk_anonymity:
                # k' schedule: permanently drop the users not kept at
                # this step, so the per-step anonymity sets are *nested*
                # and the survivors stay LT-consistent with every
                # context of the trace ("decreasing its value at each
                # point in the trace", Section 6.2).
                state.anonymity_ids = result.selected_ids
            return result

        # PER_OBSERVATION scope: the id set lives on each partial match.
        partial = self._advanced_partial(match)
        if partial is not None and "anon_ids" in partial.payload:
            result = self.generalizer.generalize_subsequent(
                location,
                partial.payload["anon_ids"],
                tolerance,
                required=max(required_k - 1, 0),
            )
            if result.hk_anonymity:
                partial.payload["anon_ids"] = result.selected_ids
            return result
        result = self.generalizer.generalize_initial(
            location, initial_k, tolerance, requester=user_id
        )
        if match.started is not None and result.hk_anonymity:
            match.started.payload["anon_ids"] = result.selected_ids
        return result

    @staticmethod
    def _advanced_partial(match: MatchEvent) -> PartialMatch | None:
        """The most-progressed partial this request extended, if any."""
        if not match.advanced:
            return None
        return max(match.advanced, key=lambda p: p.next_index)

    def _reset_user(self, user_id: int) -> None:
        """Reset all pattern state after a successful unlinking."""
        for state in self._states.get(user_id, ()):  # Section 6.1 step 2
            state.monitor.reset()
            state.anonymity_ids = None
            state.steps = 0

    # ------------------------------------------------------------------
    # evaluation helpers
    # ------------------------------------------------------------------

    def sp_log(self, service: str | None = None) -> list[SPRequest]:
        """The requests a service provider actually received."""
        return [
            event.request.sp_view()
            for event in self.events
            if event.forwarded
            and (service is None or event.request.service == service)
        ]

    def forwarded_requests(self) -> list[Request]:
        """TS-side records of all forwarded requests (evaluation only)."""
        return [event.request for event in self.events if event.forwarded]

    def decision_counts(self) -> dict[Decision, int]:
        """Histogram of decisions over all processed requests."""
        counts = {decision: 0 for decision in Decision}
        for event in self.events:
            counts[event.decision] += 1
        return counts
