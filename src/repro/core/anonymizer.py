"""The Trusted Server's privacy-preservation strategy (Section 6.1).

For every incoming request the TS:

1. monitors the request against the user's LBQIDs (the Section 4 timed
   automaton); when the request matches the first element of an LBQID, or
   extends a partially matched pattern under the temporal constraints, its
   exact ``⟨x, y, t⟩`` is **generalized** with Algorithm 1 so that the
   forwarded context preserves Historical k-anonymity of the requests
   matched so far;
2. when generalization *fails* (the box needed for k users violates the
   service's tolerance constraints), the TS tries to **unlink** future
   requests by changing the user's pseudonym (Section 6.3); on success all
   partially matched patterns under the old pseudonym are reset;
3. when unlinking also fails, the user is **at risk of identification**
   and is notified; depending on policy the request is suppressed or
   forwarded anyway.

Since the engine refactor this module is a thin facade: the strategy
itself lives in :mod:`repro.engine` as an explicit staged pipeline
(``QuietGate`` → ``MonitorMatch`` → ``Generalize`` → ``Unlink`` →
``RiskPolicy`` → ``Audit``), with all per-user mutable state behind the
:class:`~repro.engine.session.SessionStore` protocol.
:class:`TrustedAnonymizer` keeps the historical constructor, audit
fields, and telemetry labels byte-for-byte; use the underlying
:attr:`TrustedAnonymizer.engine` (or build an
:class:`~repro.engine.pipeline.Engine` directly) to swap stages or
session backends.

Anonymity-set scope — an interpretive choice the sketched Algorithm 1
leaves open (documented in DESIGN.md and measured in benchmark E5):

* ``AnonymitySetScope.PER_LBQID`` (default): the k users are selected once
  per (user, LBQID) — at the first generalized request — and reused for
  *every* later request matching that LBQID until an unlinking reset.
  This is the reading under which Theorem 1 holds for the full matched
  request set, because one fixed set of PHLs stays LT-consistent with all
  forwarded contexts.
* ``AnonymitySetScope.PER_OBSERVATION``: the k users are reselected at
  each sequence observation's first element (the literal reading of
  Algorithm 1's input/output signature).  Contexts are smaller, but the
  users consistent with the *union* of contexts may fall below k.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.core.generalization import ToleranceConstraint
from repro.core.lbqid import LBQID
from repro.core.policy import PolicyTable
from repro.core.randomization import BoxRandomizer
from repro.core.requests import Request, SPRequest
from repro.core.unlinking import UnlinkingProvider
from repro.engine.context import (
    AnonymitySetScope,
    AnonymizerEvent,
    Decision,
)
from repro.engine.pipeline import Engine, PipelineBuilder
from repro.engine.session import (
    LBQIDState,
    SessionPseudonyms,
    SessionStore,
)
from repro.engine.stages import Stage
from repro.geometry.point import STPoint
from repro.mod.store import TrajectoryStore
from repro.obs.config import Telemetry, TelemetryConfig

__all__ = [
    "AnonymitySetScope",
    "AnonymizerEvent",
    "Decision",
    "TrustedAnonymizer",
]

#: Backwards-compatible alias: per-(user, LBQID) tracking state now
#: lives in :mod:`repro.engine.session`.
_LBQIDState = LBQIDState


class TrustedAnonymizer:
    """The TS-side facade tying monitors, Algorithm 1 and unlinking together.

    Typical use::

        store = TrajectoryStore()
        policy = PolicyTable(...)
        ts = TrustedAnonymizer(store, policy, unlinker=AlwaysUnlink())
        ts.register_lbqid(user_id, commute_lbqid(home, office))
        ...
        ts.report_location(user_id, point)       # location updates
        event = ts.request(user_id, point, "poi")  # a service request

    Ground-truth audit events accumulate in :attr:`events` (unless
    ``audit="counts"`` bounds retention); the SP-visible stream is
    :meth:`sp_log`.  The work happens in the staged
    :class:`~repro.engine.pipeline.Engine` at :attr:`engine` —
    ``sessions``, ``audit``, and ``pipeline`` pass straight through to
    it for sharded session state, bounded audit trails, and custom
    stage orders.
    """

    def __init__(
        self,
        store: TrajectoryStore,
        policy: PolicyTable | None = None,
        unlinker: UnlinkingProvider | None = None,
        scope: AnonymitySetScope = AnonymitySetScope.PER_LBQID,
        default_cloak: ToleranceConstraint | None = None,
        randomizer: "BoxRandomizer | None" = None,
        quiet_period: float = 0.0,
        telemetry: "Telemetry | TelemetryConfig | None" = None,
        sessions: SessionStore | None = None,
        audit: str = "full",
        pipeline: "PipelineBuilder | Sequence[Stage] | None" = None,
    ) -> None:
        self.engine = Engine(
            store,
            policy=policy,
            unlinker=unlinker,
            scope=scope,
            default_cloak=default_cloak,
            randomizer=randomizer,
            quiet_period=quiet_period,
            telemetry=telemetry,
            sessions=sessions,
            audit=audit,
            pipeline=pipeline,
        )
        #: PseudonymManager-shaped view over the engine's session store.
        self.pseudonyms = SessionPseudonyms(self.engine.sessions)

    # ------------------------------------------------------------------
    # engine pass-throughs (the historical public attributes)
    # ------------------------------------------------------------------

    @property
    def store(self) -> TrajectoryStore:
        return self.engine.store

    @property
    def policy(self) -> PolicyTable:
        return self.engine.policy

    @policy.setter
    def policy(self, policy: PolicyTable) -> None:
        self.engine.policy = policy

    @property
    def unlinker(self) -> UnlinkingProvider:
        return self.engine.unlinker

    @unlinker.setter
    def unlinker(self, unlinker: UnlinkingProvider) -> None:
        self.engine.unlinker = unlinker

    @property
    def scope(self) -> AnonymitySetScope:
        return self.engine.scope

    @property
    def default_cloak(self) -> ToleranceConstraint | None:
        return self.engine.default_cloak

    @property
    def randomizer(self) -> "BoxRandomizer | None":
        return self.engine.randomizer

    @property
    def quiet_period(self) -> float:
        return self.engine.quiet_period

    @property
    def telemetry(self) -> Telemetry:
        return self.engine.telemetry

    @property
    def generalizer(self):
        return self.engine.generalizer

    @property
    def events(self) -> list[AnonymizerEvent]:
        """Retained audit events (empty under ``audit="counts"``)."""
        return self.engine.audit.events

    @property
    def _states(self) -> dict[int, list[LBQIDState]]:
        """Per-user LBQID states, as the pre-engine private dict."""
        sessions = self.engine.sessions
        return {
            user_id: sessions.session(user_id).lbqids
            for user_id in sessions.users()
        }

    # ------------------------------------------------------------------
    # registration and location updates
    # ------------------------------------------------------------------

    def register_lbqid(self, user_id: int, lbqid: LBQID) -> None:
        """Attach an LBQID specification for a user (Section 6.1 step 1)."""
        self.engine.register_lbqid(user_id, lbqid)

    def register_lbqids(
        self, user_id: int, lbqids: Iterable[LBQID]
    ) -> None:
        """Attach several LBQIDs for a user."""
        self.engine.register_lbqids(user_id, lbqids)

    def report_location(self, user_id: int, location: STPoint) -> None:
        """Ingest a location update that is not a service request.

        "A location update may be received by the TS even if the user did
        not make a request when being at that location" — these updates
        populate the PHLs that define everyone's anonymity sets.
        """
        self.engine.report_location(user_id, location)

    # ------------------------------------------------------------------
    # request processing
    # ------------------------------------------------------------------

    def request(
        self,
        user_id: int,
        location: STPoint,
        service: str = "default",
        data: Mapping[str, object] | None = None,
    ) -> AnonymizerEvent:
        """Process one service request end to end.

        Returns the audit event; the outgoing SP request (if forwarded)
        is appended to the log returned by :meth:`sp_log`.
        """
        return self.engine.process(user_id, location, service, data)

    # ------------------------------------------------------------------
    # evaluation helpers
    # ------------------------------------------------------------------

    def sp_log(self, service: str | None = None) -> list[SPRequest]:
        """The requests a service provider actually received."""
        return self.engine.sp_log(service)

    def forwarded_requests(self) -> list[Request]:
        """TS-side records of all forwarded requests (evaluation only)."""
        return self.engine.forwarded_requests()

    def decision_counts(self) -> dict[Decision, int]:
        """Histogram of decisions over all processed requests."""
        return self.engine.decision_counts()
