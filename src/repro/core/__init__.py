"""The paper's primary contribution: the privacy-preservation framework.

Modules map one-to-one onto the paper's formal machinery:

* :mod:`repro.core.requests` — service requests as seen by the Trusted
  Server (exact) and by Service Providers (generalized), Section 3.
* :mod:`repro.core.lbqid` — Location-Based Quasi-Identifiers,
  Definition 1.
* :mod:`repro.core.matching` — request/LBQID matching (Definitions 2–3)
  and the incremental timed-automaton monitor of Section 4.
* :mod:`repro.core.linkability` — the ``Link()`` function and
  Θ-link-connected request sets, Definitions 4–5.
* :mod:`repro.core.phl` — Personal Histories of Locations and
  LT-consistency, Definitions 6–7.
* :mod:`repro.core.historical_k` — Historical k-anonymity, Definition 8.
* :mod:`repro.core.generalization` — the spatio-temporal generalization
  procedure, Algorithm 1.
* :mod:`repro.core.pseudonyms` — pseudonym lifecycle management.
* :mod:`repro.core.unlinking` — the abstract Unlinking action of
  Section 6.3.
* :mod:`repro.core.policy` — qualitative privacy preferences and service
  tolerance constraints, Sections 3 and 6.
* :mod:`repro.core.anonymizer` — the full preservation strategy of
  Section 6.1 tying everything together.
"""

from repro.core.requests import Request, SPRequest
from repro.core.lbqid import LBQID, LBQIDElement
from repro.core.matching import LBQIDMonitor, MatchEvent, request_set_matches
from repro.core.linkability import (
    LinkFunction,
    PseudonymLink,
    is_link_connected,
    theta_components,
)
from repro.core.phl import PersonalHistory
from repro.core.historical_k import (
    historical_anonymity_set,
    satisfies_historical_k,
)
from repro.core.generalization import (
    GeneralizationResult,
    SpatioTemporalGeneralizer,
    ToleranceConstraint,
)
from repro.core.pseudonyms import PseudonymManager
from repro.core.randomization import BoxRandomizer
from repro.core.unlinking import (
    AlwaysUnlink,
    NeverUnlink,
    ProbabilisticUnlink,
    UnlinkOutcome,
    UnlinkingProvider,
)
from repro.core.policy import PrivacyLevel, PrivacyProfile, PolicyTable
from repro.core.anonymizer import AnonymizerEvent, Decision, TrustedAnonymizer

__all__ = [
    "Request",
    "SPRequest",
    "LBQID",
    "LBQIDElement",
    "LBQIDMonitor",
    "MatchEvent",
    "request_set_matches",
    "LinkFunction",
    "PseudonymLink",
    "is_link_connected",
    "theta_components",
    "PersonalHistory",
    "historical_anonymity_set",
    "satisfies_historical_k",
    "ToleranceConstraint",
    "GeneralizationResult",
    "SpatioTemporalGeneralizer",
    "PseudonymManager",
    "BoxRandomizer",
    "UnlinkingProvider",
    "UnlinkOutcome",
    "AlwaysUnlink",
    "NeverUnlink",
    "ProbabilisticUnlink",
    "PrivacyLevel",
    "PrivacyProfile",
    "PolicyTable",
    "TrustedAnonymizer",
    "Decision",
    "AnonymizerEvent",
]
