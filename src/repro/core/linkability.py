"""Service request linkability (Definitions 4–5).

Definition 4 models linkability as a symmetric, reflexive partial function
``Link: R × R → [0, 1]`` giving "the likelihood value of the two requests
being issued by the same individual".  Definition 5 lifts it to sets: a
request set is *link-connected with likelihood Θ* when every pair of
requests is joined by a chain of links each of value ≥ Θ.

:class:`LinkFunction` is the protocol; three reference implementations are
provided:

* :class:`PseudonymLink` — "any two requests with the same UserPseudonym
  are clearly linkable" (Section 5.2): 1.0 on equal pseudonyms, 0.0
  otherwise;
* :class:`GroundTruthLink` — the *correct* link function of Section 5.2
  (1.0 iff same real user), available only to evaluation code;
* :class:`CompositeMaxLink` — combine several techniques by taking the
  maximum likelihood, mirroring an attacker that applies every technique
  it has.

The tracking-based attacker's learned link function lives in
:mod:`repro.attack.linker`.
"""

from __future__ import annotations

from typing import Iterable, Protocol, Sequence

from repro.core.requests import Request, SPRequest

AnyRequest = Request | SPRequest


class LinkFunction(Protocol):
    """Protocol for Definition 4's ``Link()``.

    Implementations must be symmetric and reflexive; ``is_link_connected``
    relies on both properties.
    """

    def link(self, a: AnyRequest, b: AnyRequest) -> float:
        """Likelihood in ``[0, 1]`` that ``a`` and ``b`` share an issuer."""
        ...


class PseudonymLink:
    """Link requests that carry the same pseudonym."""

    def link(self, a: AnyRequest, b: AnyRequest) -> float:
        if a is b:
            return 1.0
        return 1.0 if a.pseudonym == b.pseudonym else 0.0


class GroundTruthLink:
    """The correct link function: 1.0 iff issued by the same user.

    Requires TS-side :class:`~repro.core.requests.Request` objects; it is
    used to validate attacker link estimates, never by attacker code.
    """

    def link(self, a: AnyRequest, b: AnyRequest) -> float:
        if not isinstance(a, Request) or not isinstance(b, Request):
            raise TypeError(
                "GroundTruthLink needs TS-side requests with user ids"
            )
        return 1.0 if a.user_id == b.user_id else 0.0


class CompositeMaxLink:
    """Maximum over several link functions.

    An attacker combining techniques links two requests as soon as any
    one technique does, hence the max.
    """

    def __init__(self, parts: Sequence[LinkFunction]) -> None:
        if not parts:
            raise ValueError("CompositeMaxLink needs at least one part")
        self._parts = list(parts)

    def link(self, a: AnyRequest, b: AnyRequest) -> float:
        return max(part.link(a, b) for part in self._parts)


class _UnionFind:
    """Minimal union–find over ``range(n)`` for connectivity queries."""

    def __init__(self, n: int) -> None:
        self._parent = list(range(n))

    def find(self, i: int) -> int:
        root = i
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[i] != root:
            self._parent[i], i = root, self._parent[i]
        return root

    def union(self, i: int, j: int) -> None:
        ri, rj = self.find(i), self.find(j)
        if ri != rj:
            self._parent[rj] = ri


def _component_labels(
    requests: Sequence[AnyRequest], link_fn: LinkFunction, theta: float
) -> list[int]:
    """Union-find roots after joining every pair with link ≥ theta."""
    if not 0 <= theta <= 1:
        raise ValueError(f"theta must be in [0, 1], got {theta}")
    uf = _UnionFind(len(requests))
    for i in range(len(requests)):
        for j in range(i + 1, len(requests)):
            if link_fn.link(requests[i], requests[j]) >= theta:
                uf.union(i, j)
    return [uf.find(i) for i in range(len(requests))]


def is_link_connected(
    requests: Sequence[AnyRequest], link_fn: LinkFunction, theta: float
) -> bool:
    """Definition 5: is the set link-connected with likelihood ``theta``?

    Vacuously true for empty and singleton sets (reflexivity).
    """
    labels = _component_labels(requests, link_fn, theta)
    return len(set(labels)) <= 1


def theta_components(
    requests: Sequence[AnyRequest], link_fn: LinkFunction, theta: float
) -> list[list[AnyRequest]]:
    """Partition requests into maximal Θ-link-connected components.

    These are the request groups an attacker applying ``link_fn`` at
    confidence threshold ``theta`` would attribute to single users.
    """
    labels = _component_labels(requests, link_fn, theta)
    groups: dict[int, list[AnyRequest]] = {}
    for request, label in zip(requests, labels):
        groups.setdefault(label, []).append(request)
    return list(groups.values())


def link_function_is_correct(
    requests: Sequence[Request], link_fn: LinkFunction
) -> bool:
    """Section 5.2's correctness criterion for a link function.

    "All the requests of R' belong to the same user if and only if R' is
    link-connected with Θ = 1": we check it on every per-user subset and
    on the maximal Θ=1 components of the whole set.
    """
    by_user: dict[int, list[Request]] = {}
    for request in requests:
        by_user.setdefault(request.user_id, []).append(request)
    for subset in by_user.values():
        if not is_link_connected(subset, link_fn, 1.0):
            return False
    for component in theta_components(list(requests), link_fn, 1.0):
        users = {r.user_id for r in component if isinstance(r, Request)}
        if len(users) > 1:
            return False
    return True


def pairwise_links(
    requests: Sequence[AnyRequest], link_fn: LinkFunction
) -> Iterable[tuple[int, int, float]]:
    """Yield ``(i, j, likelihood)`` for every unordered pair.

    Handy for inspecting or plotting a link function's behaviour.
    """
    for i in range(len(requests)):
        for j in range(i + 1, len(requests)):
            yield i, j, link_fn.link(requests[i], requests[j])
