"""Matching requests against LBQIDs (Definitions 2–3, Section 4).

The paper suggests the operational form directly: "a timed state automata
may be used for each LBQID and each user, advancing the state of the
automata when the actual location of the user at the request time is within
the area specified by one of the current states, and the temporal
constraints are satisfied".

:class:`LBQIDMonitor` is that automaton, implemented non-deterministically:
every request matching the first element starts a new *partial match*, and
every live partial whose next expected element matches is advanced.  The
temporal constraints between consecutive elements follow Definition 3(2):
timestamps are non-decreasing and, when the recurrence formula is
non-empty, the whole sequence stays within a single granule of its first
granularity ``G1`` (the sequence-duration bound of Definition 1's
semantics).  Completed sequences are accumulated as *observations* and fed
to the recurrence formula; the LBQID is *matched* once the formula is
satisfied.

Partials carry a free-form ``payload`` dict so the anonymizer can attach
the anonymity set chosen at the partial's first element (Algorithm 1
line 6) and retrieve it at subsequent elements (line 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.geometry.point import STPoint
from repro.core.lbqid import LBQID
from repro.obs.config import Telemetry, TelemetryConfig, resolve_telemetry

#: Upper bound on simultaneously tracked partial matches per monitor.
#: Partials expire when the time leaves their G1 granule, so this cap is a
#: safety valve against pathological workloads, not a tuning knob.
MAX_PARTIALS = 32


@dataclass
class PartialMatch:
    """State of one in-progress match of the element sequence.

    ``next_index`` is the element the partial now expects; ``timestamps``
    the request instants that matched elements ``0 .. next_index-1``.
    ``granule`` is the G1 granule the sequence is confined to — ``None``
    when the recurrence is empty (no confinement) *or* when the sequence
    started inside a gap of G1, in which case the partial is *dead*: it
    still records that the first element was matched (so the strategy
    generalizes the request) but can never be extended into a valid
    observation.
    """

    next_index: int
    timestamps: list[float]
    granule: int | None
    dead: bool = False
    payload: dict = field(default_factory=dict)

    @property
    def started_at(self) -> float:
        return self.timestamps[0]

    @property
    def is_initial(self) -> bool:
        """Whether only the first element has been matched so far."""
        return self.next_index == 1


@dataclass(frozen=True)
class MatchEvent:
    """Outcome of feeding one request location to a monitor.

    ``started`` is the new partial created when the request matched the
    first element; ``advanced`` lists existing partials the request
    extended (already in their post-advance state, and no longer present
    in the monitor if completed).  ``completed`` holds the timestamp
    tuples of sequences completed by this request, ``lbqid_matched``
    whether the recurrence formula is satisfied after this request.
    """

    started: PartialMatch | None
    advanced: tuple[PartialMatch, ...]
    completed: tuple[tuple[float, ...], ...]
    lbqid_matched: bool

    @property
    def matched_any_element(self) -> bool:
        """Whether the request matched an element per the Section 6.1 rule.

        True exactly when the strategy's generalization condition holds:
        the request matches the first element, or extends a partial whose
        previous element was matched under the temporal constraints.
        """
        return self.started is not None or bool(self.advanced)


class LBQIDMonitor:
    """Timed-automaton monitor for one (user, LBQID) pair."""

    def __init__(
        self,
        lbqid: LBQID,
        telemetry: "Telemetry | TelemetryConfig | None" = None,
    ) -> None:
        self.lbqid = lbqid
        self.partials: list[PartialMatch] = []
        self.observations: list[tuple[float, ...]] = []
        self._matched = False
        self._telemetry = resolve_telemetry(telemetry)

    @property
    def matched(self) -> bool:
        """Whether the LBQID has been fully matched (recurrence satisfied)."""
        return self._matched

    def reset(self) -> None:
        """Forget all progress.

        The Section 6.1 strategy resets "all partially matched patterns
        based on old pseudonym" after a successful unlinking; completed
        observations are discarded too, because they were made under the
        old pseudonym and are no longer linkable to future requests.
        """
        self.partials.clear()
        self.observations.clear()
        self._matched = False

    def _expire(self, t: float) -> None:
        """Drop partials whose G1 granule can no longer contain ``t``."""
        recurrence = self.lbqid.recurrence
        if recurrence.is_empty:
            return
        g1 = recurrence.terms[0].granularity
        current = g1.granule_containing(t)
        self.partials = [p for p in self.partials if p.granule == current]

    def feed(self, location: STPoint) -> MatchEvent:
        """Process one exact request location, in timestamp order."""
        self._expire(location.t)
        elements = self.lbqid.elements
        advanced: list[PartialMatch] = []
        completed: list[tuple[float, ...]] = []
        survivors: list[PartialMatch] = []
        for partial in self.partials:
            extendable = (
                not partial.dead
                and elements[partial.next_index].matches(location)
                and location.t >= partial.timestamps[-1]
            )
            if not extendable:
                survivors.append(partial)
                continue
            partial.timestamps.append(location.t)
            partial.next_index += 1
            advanced.append(partial)
            if partial.next_index == len(elements):
                observation = tuple(partial.timestamps)
                completed.append(observation)
                self.observations.append(observation)
            else:
                survivors.append(partial)
        self.partials = survivors

        started = None
        if elements[0].matches(location):
            started = self._start_partial(location)
            if len(elements) == 1:
                if not started.dead:
                    observation = (location.t,)
                    completed.append(observation)
                    self.observations.append(observation)
            elif not started.dead:
                # Dead partials (started inside a G1 gap) can never be
                # extended into a valid observation, so they are reported
                # in the event but not tracked.
                self.partials.append(started)
                if len(self.partials) > MAX_PARTIALS:
                    self.partials.pop(0)

        newly_matched = False
        if completed and not self._matched:
            self._matched = self.lbqid.recurrence.satisfied_by(
                self.observations
            )
            newly_matched = self._matched
        event = MatchEvent(
            started=started,
            advanced=tuple(advanced),
            completed=tuple(completed),
            lbqid_matched=self._matched,
        )
        telemetry = self._telemetry
        if telemetry.enabled:
            telemetry.count("monitor.samples")
            if event.matched_any_element:
                telemetry.count("monitor.match_events")
            if started is not None:
                telemetry.count("monitor.partials_started")
            if advanced:
                telemetry.count("monitor.partials_advanced", len(advanced))
            if completed:
                telemetry.count("monitor.observations", len(completed))
            if newly_matched:
                telemetry.count("monitor.lbqids_matched")
                telemetry.event(
                    "monitor.lbqid_matched",
                    lbqid=self.lbqid.name,
                    t=location.t,
                    observations=len(self.observations),
                )
        return event

    def _start_partial(self, location: STPoint) -> PartialMatch:
        recurrence = self.lbqid.recurrence
        if recurrence.is_empty:
            return PartialMatch(1, [location.t], granule=None)
        g1 = recurrence.terms[0].granularity
        granule = g1.granule_containing(location.t)
        return PartialMatch(
            1, [location.t], granule=granule, dead=granule is None
        )


def request_set_matches(
    lbqid: LBQID, locations: Iterable[STPoint]
) -> bool:
    """Definition 3, operationalized: does a request set match the LBQID?

    ``locations`` are the exact locations/times of the requests as seen by
    the TS; they are processed in timestamp order through a fresh monitor.
    Returns True when the completed observations satisfy the recurrence
    formula.
    """
    monitor = LBQIDMonitor(lbqid)
    for location in sorted(locations, key=lambda p: p.t):
        monitor.feed(location)
    return monitor.matched


def first_match_time(
    lbqid: LBQID, locations: Sequence[STPoint]
) -> float | None:
    """Time at which the LBQID first becomes matched, or ``None``.

    Convenience for experiments measuring how quickly an attacker
    observing the full trace would see the quasi-identifier complete.
    """
    monitor = LBQIDMonitor(lbqid)
    for location in sorted(locations, key=lambda p: p.t):
        event = monitor.feed(location)
        if event.lbqid_matched:
            return location.t
    return None
