"""Distance functions used by Algorithm 1 and the tracking attacker.

Algorithm 1 needs, for each candidate user, "the 3D point in its PHL closest
to ⟨x, y, t⟩" (line 2).  Space is measured in meters and time in seconds, so
a combined distance needs a conversion rate between the two axes.  We follow
the usual convention for moving-object data and scale time by a *reference
speed* (meters per second): a gap of ``s`` seconds counts as much as a gap
of ``s * time_scale`` meters.  The default of 1.5 m/s approximates walking
speed; callers tune it to the population being modeled.
"""

from __future__ import annotations

import math

from repro.geometry.point import Point, STPoint
from repro.geometry.region import Rect

#: Default conversion rate between the temporal and spatial axes, in m/s.
DEFAULT_TIME_SCALE = 1.5


def euclidean(a: Point, b: Point) -> float:
    """Euclidean distance between two planar points, in meters."""
    return math.hypot(a.x - b.x, a.y - b.y)


def st_distance(
    a: STPoint, b: STPoint, time_scale: float = DEFAULT_TIME_SCALE
) -> float:
    """Combined spatio-temporal distance between two 3D points.

    ``time_scale`` converts seconds into equivalent meters so the three
    axes are commensurable.
    """
    dt = (a.t - b.t) * time_scale
    return math.sqrt((a.x - b.x) ** 2 + (a.y - b.y) ** 2 + dt * dt)


def point_to_rect_distance(p: Point, rect: Rect) -> float:
    """Distance from a point to the closest point of a rectangle.

    Zero when the point lies inside the (closed) rectangle.
    """
    dx = max(rect.x_min - p.x, 0.0, p.x - rect.x_max)
    dy = max(rect.y_min - p.y, 0.0, p.y - rect.y_max)
    return math.hypot(dx, dy)
