"""Points in the plane and in space-time."""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class Point:
    """A location in the 2D plane, coordinates in meters.

    Instances are immutable and hashable so they can be used as dictionary
    keys (e.g. home/work anchors in the mobility models).
    """

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other`` in meters."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def translated(self, dx: float, dy: float) -> "Point":
        """Return a new point shifted by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def midpoint(self, other: "Point") -> "Point":
        """Return the point halfway between this point and ``other``."""
        return Point((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)

    def as_tuple(self) -> tuple[float, float]:
        """Return ``(x, y)``."""
        return (self.x, self.y)


@dataclass(frozen=True, slots=True)
class STPoint:
    """A spatio-temporal point ``⟨x, y, t⟩``.

    These are the elements of a Personal History of Locations (paper
    Definition 6): the position of a user at time instant ``t``.
    """

    x: float
    y: float
    t: float

    @property
    def point(self) -> Point:
        """The spatial component as a :class:`Point`."""
        return Point(self.x, self.y)

    def spatial_distance_to(self, other: "STPoint") -> float:
        """Euclidean distance between the spatial components, in meters."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def as_tuple(self) -> tuple[float, float, float]:
        """Return ``(x, y, t)``."""
        return (self.x, self.y, self.t)
