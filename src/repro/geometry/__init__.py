"""Planar and spatio-temporal geometry primitives.

Every spatial object in the framework lives in a two-dimensional plane with
coordinates measured in meters, and every temporal value is a number of
seconds on the simulation timeline (``t = 0`` is midnight starting Monday of
week zero; see :mod:`repro.granularity`).

The central types are:

* :class:`Point` — a 2D location.
* :class:`STPoint` — a location plus a time instant; the 3D points that make
  up a Personal History of Locations (paper Definition 6).
* :class:`Rect` — an axis-aligned rectangle, the ``Area`` of a request.
* :class:`Interval` — a closed time interval, the ``TimeInterval`` of a
  request.
* :class:`STBox` — a rectangle plus an interval: the generalized
  spatio-temporal context ``⟨Area, TimeInterval⟩`` that the Trusted Server
  sends to a service provider (paper Section 3) and that Algorithm 1
  computes.
"""

from repro.geometry.point import Point, STPoint
from repro.geometry.region import Interval, Rect, STBox
from repro.geometry.distance import (
    euclidean,
    point_to_rect_distance,
    st_distance,
)

__all__ = [
    "Point",
    "STPoint",
    "Rect",
    "Interval",
    "STBox",
    "euclidean",
    "point_to_rect_distance",
    "st_distance",
]
