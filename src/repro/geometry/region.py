"""Rectangles, time intervals, and spatio-temporal boxes.

The paper represents a request's generalized context as
``⟨Area, TimeInterval⟩`` where the area is "a set of points in bidimensional
space (possibly by a pair of intervals [x1,x2][y1,y2])" (Definition 1).  We
adopt exactly that representation: axis-aligned rectangles and closed time
intervals, combined into :class:`STBox`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.geometry.point import Point, STPoint


@dataclass(frozen=True, slots=True)
class Interval:
    """A closed interval ``[start, end]`` on the simulation timeline.

    Degenerate intervals (``start == end``) are allowed; they model an exact
    instant.  Construction validates ``start <= end``.
    """

    start: float
    end: float

    def __post_init__(self) -> None:
        if self.start > self.end:
            raise ValueError(
                f"interval start {self.start} exceeds end {self.end}"
            )

    @property
    def duration(self) -> float:
        """Length of the interval in seconds."""
        return self.end - self.start

    @property
    def center(self) -> float:
        """Midpoint of the interval."""
        return (self.start + self.end) / 2.0

    def contains(self, t: float) -> bool:
        """Whether instant ``t`` lies in the closed interval."""
        return self.start <= t <= self.end

    def contains_interval(self, other: "Interval") -> bool:
        """Whether ``other`` lies entirely within this interval."""
        return self.start <= other.start and other.end <= self.end

    def overlaps(self, other: "Interval") -> bool:
        """Whether the two closed intervals share at least one instant."""
        return self.start <= other.end and other.start <= self.end

    def intersection(self, other: "Interval") -> "Interval | None":
        """The overlapping sub-interval, or ``None`` if disjoint."""
        if not self.overlaps(other):
            return None
        return Interval(max(self.start, other.start), min(self.end, other.end))

    def union_hull(self, other: "Interval") -> "Interval":
        """Smallest interval containing both intervals."""
        return Interval(min(self.start, other.start), max(self.end, other.end))

    def expanded(self, margin: float) -> "Interval":
        """Interval widened by ``margin`` seconds on each side."""
        if margin < 0:
            raise ValueError("margin must be non-negative")
        return Interval(self.start - margin, self.end + margin)

    def clamped_around(self, anchor: float, max_duration: float) -> "Interval":
        """Shrink to at most ``max_duration``, keeping ``anchor`` inside.

        This implements the temporal half of Algorithm 1 line 12: when a
        generalized interval violates the service tolerance constraint it is
        "uniformly reduced" around the true request instant.
        """
        if max_duration < 0:
            raise ValueError("max_duration must be non-negative")
        if self.duration <= max_duration:
            return self
        half = max_duration / 2.0
        start = anchor - half
        end = anchor + half
        # Slide the window so it stays within the original interval when
        # the anchor is near an edge.
        if start < self.start:
            start, end = self.start, self.start + max_duration
        elif end > self.end:
            start, end = self.end - max_duration, self.end
        return Interval(start, end)


@dataclass(frozen=True, slots=True)
class Rect:
    """An axis-aligned rectangle ``[x_min, x_max] × [y_min, y_max]``.

    Degenerate rectangles (zero width and/or height) are allowed; they model
    exact locations.
    """

    x_min: float
    y_min: float
    x_max: float
    y_max: float

    def __post_init__(self) -> None:
        if self.x_min > self.x_max or self.y_min > self.y_max:
            raise ValueError(
                "rectangle min corner must not exceed max corner: "
                f"({self.x_min}, {self.y_min}) vs ({self.x_max}, {self.y_max})"
            )

    @classmethod
    def from_center(cls, center: Point, width: float, height: float) -> "Rect":
        """Rectangle of the given size centered on ``center``."""
        if width < 0 or height < 0:
            raise ValueError("width and height must be non-negative")
        return cls(
            center.x - width / 2.0,
            center.y - height / 2.0,
            center.x + width / 2.0,
            center.y + height / 2.0,
        )

    @classmethod
    def from_point(cls, point: Point) -> "Rect":
        """Degenerate rectangle holding a single point."""
        return cls(point.x, point.y, point.x, point.y)

    @classmethod
    def bounding(cls, points: Iterable[Point]) -> "Rect":
        """Smallest rectangle containing all ``points``.

        Raises :class:`ValueError` on an empty iterable.
        """
        xs: list[float] = []
        ys: list[float] = []
        for p in points:
            xs.append(p.x)
            ys.append(p.y)
        if not xs:
            raise ValueError("cannot bound an empty set of points")
        return cls(min(xs), min(ys), max(xs), max(ys))

    @property
    def width(self) -> float:
        return self.x_max - self.x_min

    @property
    def height(self) -> float:
        return self.y_max - self.y_min

    @property
    def area(self) -> float:
        """Area in square meters."""
        return self.width * self.height

    @property
    def center(self) -> Point:
        return Point(
            (self.x_min + self.x_max) / 2.0, (self.y_min + self.y_max) / 2.0
        )

    def contains(self, point: Point) -> bool:
        """Whether ``point`` lies in the closed rectangle."""
        return (
            self.x_min <= point.x <= self.x_max
            and self.y_min <= point.y <= self.y_max
        )

    def contains_rect(self, other: "Rect") -> bool:
        """Whether ``other`` lies entirely within this rectangle."""
        return (
            self.x_min <= other.x_min
            and self.y_min <= other.y_min
            and other.x_max <= self.x_max
            and other.y_max <= self.y_max
        )

    def overlaps(self, other: "Rect") -> bool:
        """Whether the two closed rectangles share at least one point."""
        return (
            self.x_min <= other.x_max
            and other.x_min <= self.x_max
            and self.y_min <= other.y_max
            and other.y_min <= self.y_max
        )

    def intersection(self, other: "Rect") -> "Rect | None":
        """The overlapping sub-rectangle, or ``None`` if disjoint."""
        if not self.overlaps(other):
            return None
        return Rect(
            max(self.x_min, other.x_min),
            max(self.y_min, other.y_min),
            min(self.x_max, other.x_max),
            min(self.y_max, other.y_max),
        )

    def union_hull(self, other: "Rect") -> "Rect":
        """Smallest rectangle containing both rectangles."""
        return Rect(
            min(self.x_min, other.x_min),
            min(self.y_min, other.y_min),
            max(self.x_max, other.x_max),
            max(self.y_max, other.y_max),
        )

    def expanded(self, margin: float) -> "Rect":
        """Rectangle grown by ``margin`` meters on every side."""
        if margin < 0:
            raise ValueError("margin must be non-negative")
        return Rect(
            self.x_min - margin,
            self.y_min - margin,
            self.x_max + margin,
            self.y_max + margin,
        )

    def clamped_around(
        self, anchor: Point, max_width: float, max_height: float
    ) -> "Rect":
        """Shrink to at most ``max_width × max_height`` keeping ``anchor``.

        The spatial half of Algorithm 1 line 12: a too-large generalized
        area is "uniformly reduced" to the tolerance constraint while still
        containing the true request location.
        """
        if max_width < 0 or max_height < 0:
            raise ValueError("maximum dimensions must be non-negative")
        x_min, x_max = _clamp_axis(
            self.x_min, self.x_max, anchor.x, max_width
        )
        y_min, y_max = _clamp_axis(
            self.y_min, self.y_max, anchor.y, max_height
        )
        return Rect(x_min, y_min, x_max, y_max)


def _clamp_axis(
    lo: float, hi: float, anchor: float, max_extent: float
) -> tuple[float, float]:
    """Shrink ``[lo, hi]`` to ``max_extent`` keeping ``anchor`` inside."""
    if hi - lo <= max_extent:
        return lo, hi
    half = max_extent / 2.0
    new_lo = anchor - half
    new_hi = anchor + half
    if new_lo < lo:
        return lo, lo + max_extent
    if new_hi > hi:
        return hi - max_extent, hi
    return new_lo, new_hi


@dataclass(frozen=True, slots=True)
class STBox:
    """A spatio-temporal box: a :class:`Rect` plus an :class:`Interval`.

    This is the "smallest 3D space (2D area + time)" that Algorithm 1
    computes and the generalized ``⟨Area, TimeInterval⟩`` sent to service
    providers.
    """

    rect: Rect
    interval: Interval

    @classmethod
    def from_st_point(cls, p: STPoint) -> "STBox":
        """Degenerate box containing exactly one spatio-temporal point."""
        return cls(Rect.from_point(p.point), Interval(p.t, p.t))

    @classmethod
    def bounding_st(cls, points: Iterable[STPoint]) -> "STBox":
        """Smallest box containing all spatio-temporal ``points``."""
        pts = list(points)
        if not pts:
            raise ValueError("cannot bound an empty set of points")
        rect = Rect.bounding(p.point for p in pts)
        ts = [p.t for p in pts]
        return cls(rect, Interval(min(ts), max(ts)))

    @property
    def volume(self) -> float:
        """Area × duration; the raw "uncertainty volume" of the box."""
        return self.rect.area * self.interval.duration

    def contains(self, p: STPoint) -> bool:
        """Whether the box contains the spatio-temporal point ``p``."""
        return self.rect.contains(p.point) and self.interval.contains(p.t)

    def contains_box(self, other: "STBox") -> bool:
        """Whether ``other`` lies entirely within this box."""
        return self.rect.contains_rect(other.rect) and (
            self.interval.contains_interval(other.interval)
        )

    def overlaps(self, other: "STBox") -> bool:
        """Whether the two boxes share at least one spatio-temporal point."""
        return self.rect.overlaps(other.rect) and self.interval.overlaps(
            other.interval
        )

    def union_hull(self, other: "STBox") -> "STBox":
        """Smallest box containing both boxes."""
        return STBox(
            self.rect.union_hull(other.rect),
            self.interval.union_hull(other.interval),
        )

    def expanded(
        self, spatial_margin: float, temporal_margin: float
    ) -> "STBox":
        """Box grown by the given spatial and temporal margins."""
        return STBox(
            self.rect.expanded(spatial_margin),
            self.interval.expanded(temporal_margin),
        )
