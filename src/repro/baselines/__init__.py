"""Baselines the paper positions itself against (Section 2).

* :mod:`repro.baselines.no_protection` — requests forwarded with exact
  coordinates; the motivating-attack condition of Section 1.
* :mod:`repro.baselines.interval_cloak` — Gruteser & Grunwald's spatial
  and temporal cloaking (the paper's reference [11]): quadtree descent
  until the user's quadrant holds at least k *potential senders*.
* :mod:`repro.baselines.clique_cloak` — Gedik & Liu's customizable-k
  model (the paper's reference [9]): a request is k-anonymous only when
  k−1 *other requests* share the cloaked box, found by clique search over
  pending requests.

All baselines cloak one request at a time and are driven by the same
simulation harness as the paper's strategy, so benchmark E6/E11 compare
like for like.
"""

from repro.baselines.no_protection import NoProtection
from repro.baselines.interval_cloak import IntervalCloak
from repro.baselines.clique_cloak import CliqueCloak, CliqueRequest

__all__ = [
    "NoProtection",
    "IntervalCloak",
    "CliqueCloak",
    "CliqueRequest",
]
