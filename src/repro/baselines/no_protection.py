"""The no-protection baseline: exact coordinates, stable pseudonym.

This is the condition the paper's introduction attacks: pseudonymous
requests carrying precise home coordinates, re-identified with a phone
book.  It exists so benchmark E6 can show the attack actually works
before measuring how much each defense blunts it.
"""

from __future__ import annotations

from repro.geometry.point import STPoint
from repro.geometry.region import STBox


class NoProtection:
    """Pass-through cloaker: the context is the exact location."""

    def cloak(self, user_id: int, location: STPoint) -> STBox:
        """Return the degenerate box at the exact request point."""
        return STBox.from_st_point(location)
