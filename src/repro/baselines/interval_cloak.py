"""Gruteser & Grunwald's spatio-temporal cloaking (paper reference [11]).

The adaptive *interval cloaking* algorithm of "Anonymous Usage of
Location-Based Services Through Spatial and Temporal Cloaking" (MobiSys
2003): starting from the whole service area, recursively subdivide into
quadrants and follow the quadrant containing the requester while it still
contains at least ``k`` users; return the last quadrant that did.
Anonymity is over *potential senders* — users whose recent location
updates place them in the quadrant — the same (weaker) requirement this
paper adopts (Section 2).

Temporal cloaking is the reference's second knob: when even the root area
holds fewer than ``k`` users in the base time window, the window is
doubled (up to a cap) until it does — "reducing the temporal resolution"
instead of the spatial one.

The crucial contrast with the paper's framework (Section 2): this scheme
treats *every request independently*; nothing ties the anonymity sets of
consecutive requests together, so a trace of cloaked requests can still
pin down its issuer — exactly the gap Historical k-anonymity closes, and
what benchmark E6 measures.
"""

from __future__ import annotations

from repro.geometry.point import STPoint
from repro.geometry.region import Interval, Rect, STBox
from repro.mod.store import TrajectoryStore


class IntervalCloak:
    """Per-request quadtree cloaking against a trajectory store.

    ``window`` is the base time window (seconds) defining "currently
    present"; ``max_window`` caps temporal widening; ``max_depth`` bounds
    quadtree descent (depth 10 over a 4 km area is sub-4 m cells, already
    below GPS noise).
    """

    def __init__(
        self,
        store: TrajectoryStore,
        area: Rect,
        k: int = 5,
        window: float = 300.0,
        max_window: float = 3600.0,
        max_depth: int = 10,
    ) -> None:
        if k < 1:
            raise ValueError(f"k must be at least 1, got {k}")
        if window <= 0 or max_window < window:
            raise ValueError(
                f"need 0 < window <= max_window, got {window}, {max_window}"
            )
        self.store = store
        self.area = area
        self.k = k
        self.window = window
        self.max_window = max_window
        self.max_depth = max_depth

    def cloak(self, user_id: int, location: STPoint) -> STBox | None:
        """Cloak one request; ``None`` when even the maximum temporal
        widening cannot gather k users over the whole area."""
        window = self.window
        while True:
            interval = Interval(location.t - window, location.t)
            box = self._spatial_cloak(location, interval)
            if box is not None:
                return box
            if window >= self.max_window:
                return None
            window = min(window * 2.0, self.max_window)

    def _spatial_cloak(
        self, location: STPoint, interval: Interval
    ) -> STBox | None:
        """Quadtree descent for a fixed time interval."""
        quadrant = self.area
        if self._occupancy(quadrant, interval) < self.k:
            return None
        for _depth in range(self.max_depth):
            child = self._child_containing(quadrant, location)
            if self._occupancy(child, interval) < self.k:
                break
            quadrant = child
        return STBox(quadrant, interval)

    def _occupancy(self, rect: Rect, interval: Interval) -> int:
        """Potential senders: users with an update in the box."""
        return len(self.store.users_in_box(STBox(rect, interval)))

    @staticmethod
    def _child_containing(rect: Rect, location: STPoint) -> Rect:
        """The quadrant of ``rect`` containing the request point."""
        cx = (rect.x_min + rect.x_max) / 2.0
        cy = (rect.y_min + rect.y_max) / 2.0
        x_min, x_max = (
            (rect.x_min, cx) if location.x <= cx else (cx, rect.x_max)
        )
        y_min, y_max = (
            (rect.y_min, cy) if location.y <= cy else (cy, rect.y_max)
        )
        return Rect(x_min, y_min, x_max, y_max)
