"""Gedik & Liu's customizable-k cloaking (paper reference [9]).

"A Customizable k-Anonymity Model for Protecting Location Privacy" (ICDCS
2005) lets every request carry its own ``k`` and its own maximum spatial
and temporal cloaking tolerances, and — the point Section 2 of our paper
debates — considers a message k-anonymous "only if there are other k−1
users in the same spatio-temporal context that actually send a message":
anonymity over *actual senders*, not potential ones.

The engine is the CliqueCloak idea: hold requests in a buffer; a request
can be served when it belongs to a *clique* of pending requests that are
pairwise inside each other's tolerance boxes and whose size reaches the
largest ``k`` among its members; the whole clique is then cloaked to a
common bounding box and released.  Requests whose deadline passes without
such a clique are dropped.  Clique search is the reference's local
heuristic (exact maximum clique is NP-hard): greedy growth of the new
request's compatible-neighbour set.

Benchmark E11 runs this engine and the paper's potential-senders
definition on the same workload to quantify how much the stronger
requirement costs in drop rate and cloak delay.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geometry.point import STPoint
from repro.geometry.region import Interval, Rect, STBox


@dataclass(frozen=True)
class CliqueRequest:
    """One buffered request with its personal anonymity requirements."""

    msgid: int
    user_id: int
    location: STPoint
    k: int
    spatial_tolerance: float
    temporal_tolerance: float

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError(f"k must be at least 1, got {self.k}")
        if self.spatial_tolerance < 0 or self.temporal_tolerance < 0:
            raise ValueError("tolerances must be non-negative")

    @property
    def deadline(self) -> float:
        return self.location.t + self.temporal_tolerance

    def constraint_box(self) -> STBox:
        """The largest context this request accepts.

        Temporal tolerance is symmetric around the request instant (the
        cloaked interval may start before the request was issued), while
        the *deadline* — how long the request can sit in the buffer — is
        one tolerance into the future.
        """
        return STBox(
            Rect.from_center(
                self.location.point,
                self.spatial_tolerance,
                self.spatial_tolerance,
            ),
            Interval(
                self.location.t - self.temporal_tolerance, self.deadline
            ),
        )


@dataclass(frozen=True)
class CloakedBatch:
    """A released clique: the shared context and its member requests."""

    context: STBox
    members: tuple[CliqueRequest, ...]


@dataclass
class CliqueCloakStats:
    """Running counters for drop-rate / delay reporting."""

    submitted: int = 0
    served: int = 0
    dropped: int = 0
    total_delay: float = 0.0

    @property
    def drop_rate(self) -> float:
        done = self.served + self.dropped
        return self.dropped / done if done else 0.0

    @property
    def mean_delay(self) -> float:
        return self.total_delay / self.served if self.served else 0.0


class CliqueCloak:
    """Online CliqueCloak engine.

    Drive it with :meth:`submit` in timestamp order; released batches are
    returned as they form.  Call :meth:`flush` at the end of a run to
    expire whatever is still pending.
    """

    def __init__(self) -> None:
        self.pending: list[CliqueRequest] = []
        self.stats = CliqueCloakStats()
        self.batches: list[CloakedBatch] = []

    def submit(self, request: CliqueRequest) -> CloakedBatch | None:
        """Buffer one request; return a batch if one forms around it."""
        self._expire(request.location.t)
        self.stats.submitted += 1
        self.pending.append(request)
        clique = self._find_clique(request)
        if clique is None:
            return None
        return self._release(clique)

    def flush(self, now: float | None = None) -> None:
        """Expire every pending request (end of run)."""
        if now is None:
            now = float("inf")
        self._expire(now)

    def _expire(self, now: float) -> None:
        alive = []
        for pending in self.pending:
            if pending.deadline < now:
                self.stats.dropped += 1
            else:
                alive.append(pending)
        self.pending = alive

    @staticmethod
    def _compatible(a: CliqueRequest, b: CliqueRequest) -> bool:
        """Whether each request lies in the other's tolerance box."""
        return a.constraint_box().contains(
            b.location
        ) and b.constraint_box().contains(a.location)

    def _find_clique(
        self, seed: CliqueRequest
    ) -> list[CliqueRequest] | None:
        """Local clique search around the newly arrived request.

        Greedy growth over the seed's compatible neighbours, nearest
        first; accepted when the clique size reaches the maximum ``k``
        among its members.
        """
        neighbours = [
            other
            for other in self.pending
            if other is not seed and self._compatible(seed, other)
        ]
        neighbours.sort(
            key=lambda other: other.location.spatial_distance_to(
                seed.location
            )
        )
        clique = [seed]
        for candidate in neighbours:
            if all(
                self._compatible(candidate, member) for member in clique
            ):
                clique.append(candidate)
            if len(clique) >= max(member.k for member in clique):
                return clique
        if len(clique) >= max(member.k for member in clique):
            return clique
        return None

    def _release(self, clique: list[CliqueRequest]) -> CloakedBatch:
        """Serve a clique with its common bounding context."""
        released_at = max(member.location.t for member in clique)
        context = STBox.bounding_st([m.location for m in clique])
        batch = CloakedBatch(context=context, members=tuple(clique))
        self.batches.append(batch)
        for member in clique:
            self.stats.served += 1
            self.stats.total_delay += released_at - member.location.t
        self.pending = [p for p in self.pending if p not in clique]
        return batch
