"""Reproduction of Bettini, Wang & Jajodia (2005):
*Protecting Privacy Against Location-based Personal Identification*.

A from-scratch implementation of the paper's privacy framework —
location-based quasi-identifiers (LBQIDs), service-request linkability,
Historical k-anonymity, and the Trusted-Server preservation strategy built
on spatio-temporal generalization (Algorithm 1) and mix-zone unlinking —
together with every substrate the evaluation needs: a moving-object
database, synthetic mobility models, the anonymous LBS service model,
tracking/re-identification attackers, and the prior-work baselines the
paper compares against.

Quickstart::

    from repro import (
        TrustedAnonymizer, TrajectoryStore, PolicyTable,
        commute_lbqid, Rect,
    )

See ``examples/quickstart.py`` for a complete runnable scenario and
DESIGN.md for the full system inventory.
"""

import logging as _logging

# Library convention: emit through the "repro" logger tree, never to a
# handler we install ourselves.  Consumers opt into output with standard
# logging configuration (e.g. logging.basicConfig); by default the
# NullHandler keeps the library silent.
_logging.getLogger("repro").addHandler(_logging.NullHandler())

from repro.geometry import Interval, Point, Rect, STBox, STPoint
from repro.granularity import (
    DAY,
    HOUR,
    MINUTE,
    WEEK,
    RecurrenceFormula,
    UnanchoredInterval,
    time_at,
)
from repro.core import (
    LBQID,
    AlwaysUnlink,
    AnonymizerEvent,
    Decision,
    LBQIDElement,
    LBQIDMonitor,
    NeverUnlink,
    PersonalHistory,
    PolicyTable,
    PrivacyLevel,
    PrivacyProfile,
    ProbabilisticUnlink,
    PseudonymLink,
    Request,
    SPRequest,
    SpatioTemporalGeneralizer,
    ToleranceConstraint,
    TrustedAnonymizer,
    historical_anonymity_set,
    is_link_connected,
    request_set_matches,
    satisfies_historical_k,
    theta_components,
)
from repro.core.lbqid import commute_lbqid
from repro.core.randomization import BoxRandomizer
from repro.engine import (
    BatchItem,
    Engine,
    InMemorySessionStore,
    PipelineBuilder,
    ShardedSessionStore,
)
from repro.mining import mine_commute_lbqid
from repro.mod import GridIndex, TrajectoryStore
from repro.obs import Telemetry, TelemetryConfig

__version__ = "1.0.0"

__all__ = [
    "Point",
    "STPoint",
    "Rect",
    "Interval",
    "STBox",
    "MINUTE",
    "HOUR",
    "DAY",
    "WEEK",
    "time_at",
    "UnanchoredInterval",
    "RecurrenceFormula",
    "LBQID",
    "LBQIDElement",
    "commute_lbqid",
    "LBQIDMonitor",
    "request_set_matches",
    "PseudonymLink",
    "is_link_connected",
    "theta_components",
    "PersonalHistory",
    "historical_anonymity_set",
    "satisfies_historical_k",
    "Request",
    "SPRequest",
    "ToleranceConstraint",
    "SpatioTemporalGeneralizer",
    "PrivacyLevel",
    "PrivacyProfile",
    "PolicyTable",
    "AlwaysUnlink",
    "NeverUnlink",
    "ProbabilisticUnlink",
    "TrustedAnonymizer",
    "Engine",
    "PipelineBuilder",
    "BatchItem",
    "InMemorySessionStore",
    "ShardedSessionStore",
    "Decision",
    "AnonymizerEvent",
    "BoxRandomizer",
    "mine_commute_lbqid",
    "TrajectoryStore",
    "GridIndex",
    "Telemetry",
    "TelemetryConfig",
    "__version__",
]
