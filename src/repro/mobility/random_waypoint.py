"""The random-waypoint mobility model.

Background population for the experiments: each user repeatedly picks a
uniform destination in the city rectangle, travels to it in a straight
line at a uniformly drawn speed, pauses, and repeats.  Random-waypoint is
the standard mobility baseline in the location-privacy literature (it is
the model used to evaluate the paper's reference [11]).
"""

from __future__ import annotations

import numpy as np

from repro.geometry.point import Point, STPoint
from repro.geometry.region import Rect


def random_waypoint_trajectory(
    bounds: Rect,
    t_start: float,
    t_end: float,
    rng: np.random.Generator,
    speed_range: tuple[float, float] = (1.0, 10.0),
    pause_range: tuple[float, float] = (0.0, 600.0),
    sample_period: float = 120.0,
) -> list[STPoint]:
    """Generate one user's samples over ``[t_start, t_end]``.

    ``speed_range`` in m/s and ``pause_range`` in seconds are sampled
    uniformly per leg.  Samples are emitted every ``sample_period``
    seconds, in chronological order.
    """
    lo_speed, hi_speed = speed_range
    if not 0 < lo_speed <= hi_speed:
        raise ValueError(f"invalid speed range {speed_range}")
    lo_pause, hi_pause = pause_range
    if not 0 <= lo_pause <= hi_pause:
        raise ValueError(f"invalid pause range {pause_range}")
    if sample_period <= 0:
        raise ValueError(
            f"sample_period must be positive, got {sample_period}"
        )

    def random_point() -> Point:
        return Point(
            rng.uniform(bounds.x_min, bounds.x_max),
            rng.uniform(bounds.y_min, bounds.y_max),
        )

    points: list[STPoint] = []
    position = random_point()
    t = t_start
    next_sample = t_start
    while t < t_end:
        destination = random_point()
        speed = rng.uniform(lo_speed, hi_speed)
        distance = position.distance_to(destination)
        leg_duration = distance / speed
        leg_end = t + leg_duration
        while next_sample <= min(leg_end, t_end):
            if leg_duration == 0:
                alpha = 0.0
            else:
                alpha = (next_sample - t) / leg_duration
            points.append(
                STPoint(
                    position.x + alpha * (destination.x - position.x),
                    position.y + alpha * (destination.y - position.y),
                    next_sample,
                )
            )
            next_sample += sample_period
        position = destination
        t = leg_end
        pause = rng.uniform(lo_pause, hi_pause)
        pause_end = t + pause
        while next_sample <= min(pause_end, t_end):
            points.append(STPoint(position.x, position.y, next_sample))
            next_sample += sample_period
        t = pause_end
    return points
