"""A Manhattan-style grid road network with shortest-path routing.

Movement constrained to streets is what makes trajectory linkage attacks
realistic (the paper's Section 5.2 mentions "probability-based techniques
considering most common trajectories based on physical constraints like
roads, crossings"), and it concentrates commuters onto shared corridors,
which is what gives Algorithm 1 small anonymity boxes.
"""

from __future__ import annotations

import math

import networkx as nx

from repro.geometry.point import Point

Node = tuple[int, int]


class RoadNetwork:
    """An ``nx_blocks × ny_blocks`` street grid with ``block_size`` meters
    per block.

    Nodes are intersections identified by integer grid coordinates; edges
    are street segments weighted by length.  Routing is Dijkstra on
    length, so routes are Manhattan shortest paths.
    """

    def __init__(
        self, nx_blocks: int, ny_blocks: int, block_size: float = 200.0
    ) -> None:
        if nx_blocks < 1 or ny_blocks < 1:
            raise ValueError("grid must have at least one block per axis")
        if block_size <= 0:
            raise ValueError(f"block_size must be positive, got {block_size}")
        self.nx_blocks = nx_blocks
        self.ny_blocks = ny_blocks
        self.block_size = block_size
        self.graph = nx.grid_2d_graph(nx_blocks + 1, ny_blocks + 1)
        for a, b in self.graph.edges:
            self.graph.edges[a, b]["length"] = block_size

    @property
    def width(self) -> float:
        """East-west extent of the network, in meters."""
        return self.nx_blocks * self.block_size

    @property
    def height(self) -> float:
        """North-south extent of the network, in meters."""
        return self.ny_blocks * self.block_size

    def node_position(self, node: Node) -> Point:
        """Planar coordinates of an intersection."""
        return Point(node[0] * self.block_size, node[1] * self.block_size)

    def nearest_node(self, point: Point) -> Node:
        """The intersection closest to an arbitrary point (clamped)."""
        ix = min(max(round(point.x / self.block_size), 0), self.nx_blocks)
        iy = min(max(round(point.y / self.block_size), 0), self.ny_blocks)
        return (ix, iy)

    def route(self, origin: Node, destination: Node) -> list[Point]:
        """Waypoints of the shortest street path between intersections."""
        path = nx.shortest_path(
            self.graph, origin, destination, weight="length"
        )
        return [self.node_position(node) for node in path]

    def route_length(self, waypoints: list[Point]) -> float:
        """Total length of a waypoint polyline, in meters."""
        return sum(
            waypoints[i].distance_to(waypoints[i + 1])
            for i in range(len(waypoints) - 1)
        )

    def walk_route(
        self,
        waypoints: list[Point],
        depart_at: float,
        speed: float,
        sample_period: float,
    ) -> list[tuple[Point, float]]:
        """Positions along a route at a fixed sampling period.

        Returns ``(position, time)`` samples from departure to arrival
        (both endpoints included).  ``speed`` is in m/s.
        """
        if speed <= 0:
            raise ValueError(f"speed must be positive, got {speed}")
        if sample_period <= 0:
            raise ValueError(
                f"sample_period must be positive, got {sample_period}"
            )
        if not waypoints:
            return []
        total = self.route_length(waypoints)
        duration = total / speed
        samples = [(waypoints[0], depart_at)]
        steps = max(1, math.ceil(duration / sample_period))
        for step in range(1, steps):
            t = depart_at + step * sample_period
            samples.append(
                (self._position_along(waypoints, speed * step * sample_period),
                 t)
            )
        samples.append((waypoints[-1], depart_at + duration))
        return samples

    @staticmethod
    def _position_along(waypoints: list[Point], distance: float) -> Point:
        """Point at ``distance`` meters along the polyline."""
        remaining = distance
        for i in range(len(waypoints) - 1):
            a, b = waypoints[i], waypoints[i + 1]
            segment = a.distance_to(b)
            if remaining <= segment:
                if segment == 0:
                    return a
                alpha = remaining / segment
                return Point(
                    a.x + alpha * (b.x - a.x), a.y + alpha * (b.y - a.y)
                )
            remaining -= segment
        return waypoints[-1]
