"""Synthetic city populations.

Assembles the evaluation substrate: a road network, a population of
commuters (whose recurring round-trips realize the paper's LBQIDs) plus
random-waypoint background users, and everyone's PHLs loaded into a
:class:`~repro.mod.store.TrajectoryStore`.

Work places are drawn from a small set of *office districts* so that many
commuters share corridors and destinations — the regime in which
Historical k-anonymity is attainable at all.  Homes are spread uniformly
over the grid.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.geometry.point import Point
from repro.geometry.region import Rect
from repro.granularity.timeline import DAY, HOUR
from repro.mobility.commuter import Commuter, CommuterSchedule
from repro.mobility.network import Node, RoadNetwork
from repro.mobility.random_waypoint import random_waypoint_trajectory
from repro.mod.store import TrajectoryStore


@dataclass(frozen=True)
class CityConfig:
    """Parameters of a synthetic city workload.

    ``days`` defaults to 14 so the canonical ``3.Weekdays * 2.Weeks``
    recurrence can complete.  ``office_districts`` controls how strongly
    commuters cluster at destinations (fewer districts → more shared
    corridors → easier anonymity).
    """

    n_commuters: int = 100
    n_wanderers: int = 40
    nx_blocks: int = 20
    ny_blocks: int = 20
    block_size: float = 200.0
    days: int = 14
    office_districts: int = 4
    commuter_sample_period: float = 120.0
    wanderer_sample_period: float = 300.0
    wanderer_day_start_hour: float = 8.0
    wanderer_day_end_hour: float = 20.0
    departure_std_hours: float = 0.2
    skip_probability: float = 0.1
    seed: int = 7

    def __post_init__(self) -> None:
        if self.n_commuters < 0 or self.n_wanderers < 0:
            raise ValueError("population counts must be non-negative")
        if self.days < 1:
            raise ValueError(f"days must be at least 1, got {self.days}")
        if self.office_districts < 1:
            raise ValueError("office_districts must be at least 1")


class SyntheticCity:
    """A fully generated city: network, agents, and populated store.

    Build one with :meth:`generate`; user ids ``0 .. n_commuters-1`` are
    commuters (each exposing its home/work anchors and derived LBQID),
    the rest are random-waypoint wanderers.
    """

    def __init__(
        self,
        config: CityConfig,
        network: RoadNetwork,
        commuters: list[Commuter],
        store: TrajectoryStore,
    ) -> None:
        self.config = config
        self.network = network
        self.commuters = commuters
        self.store = store

    @classmethod
    def generate(
        cls,
        config: CityConfig | None = None,
        store: TrajectoryStore | None = None,
        **overrides,
    ) -> "SyntheticCity":
        """Generate a city, optionally into a pre-configured store.

        Keyword overrides are applied to ``config`` (e.g.
        ``SyntheticCity.generate(n_commuters=50, seed=3)``).
        """
        config = replace(config or CityConfig(), **overrides)
        rng = np.random.default_rng(config.seed)
        network = RoadNetwork(
            config.nx_blocks, config.ny_blocks, config.block_size
        )
        store = store if store is not None else TrajectoryStore()
        commuters = cls._make_commuters(config, network, rng)
        for commuter in commuters:
            store.add_points(
                commuter.user_id, commuter.trajectory(config.days, rng)
            )
        bounds = Rect(0.0, 0.0, network.width, network.height)
        for offset in range(config.n_wanderers):
            user_id = config.n_commuters + offset
            for day in range(config.days):
                day_start = day * DAY
                trajectory = random_waypoint_trajectory(
                    bounds,
                    day_start + config.wanderer_day_start_hour * HOUR,
                    day_start + config.wanderer_day_end_hour * HOUR,
                    rng,
                    sample_period=config.wanderer_sample_period,
                )
                store.add_points(user_id, trajectory)
        return cls(config, network, commuters, store)

    @staticmethod
    def _make_commuters(
        config: CityConfig, network: RoadNetwork, rng: np.random.Generator
    ) -> list[Commuter]:
        office_nodes = [
            SyntheticCity._random_node(network, rng)
            for _ in range(config.office_districts)
        ]
        commuters = []
        for user_id in range(config.n_commuters):
            home = SyntheticCity._random_node(network, rng)
            work = office_nodes[rng.integers(len(office_nodes))]
            if home == work:
                home = (
                    (home[0] + 1) % (network.nx_blocks + 1),
                    home[1],
                )
            schedule = CommuterSchedule(
                morning_departure_hour=float(rng.normal(7.5, 0.15)),
                evening_departure_hour=float(rng.normal(17.0, 0.15)),
                departure_std_hours=config.departure_std_hours,
                skip_probability=config.skip_probability,
            )
            commuters.append(
                Commuter(
                    user_id,
                    network,
                    home,
                    work,
                    schedule=schedule,
                    sample_period=config.commuter_sample_period,
                )
            )
        return commuters

    @staticmethod
    def _random_node(
        network: RoadNetwork, rng: np.random.Generator
    ) -> Node:
        return (
            int(rng.integers(network.nx_blocks + 1)),
            int(rng.integers(network.ny_blocks + 1)),
        )

    @property
    def bounds(self) -> Rect:
        """The city rectangle."""
        return Rect(0.0, 0.0, self.network.width, self.network.height)

    @property
    def all_user_ids(self) -> list[int]:
        """Commuters first, then wanderers."""
        return list(
            range(self.config.n_commuters + self.config.n_wanderers)
        )

    def home_locations(self) -> dict[int, Point]:
        """Ground-truth home anchors (the attacker's phone-book oracle)."""
        return {c.user_id: c.home_point for c in self.commuters}
