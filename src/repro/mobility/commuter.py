"""Home/work commuters.

The canonical subject of the paper: a user whose weekday round-trip
between home and office — "the trip from the condominium where he lives to
the building where he works every morning and the trip back in the
afternoon" (Example 1) — recurs regularly enough to act as an LBQID.

A :class:`Commuter` owns a home and a work anchor on the road network and
a stochastic :class:`CommuterSchedule`; :meth:`Commuter.trajectory`
generates its PHL samples over a span of days, and
:meth:`Commuter.lbqid` derives the matching Example 2 quasi-identifier.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.lbqid import LBQID, commute_lbqid
from repro.geometry.point import Point, STPoint
from repro.geometry.region import Rect
from repro.granularity.timeline import DAY, HOUR, day_of_week
from repro.mobility.network import Node, RoadNetwork


@dataclass(frozen=True)
class CommuterSchedule:
    """Departure statistics of one commuter, all in hours-of-day.

    Each workday's actual departures are drawn from normal distributions
    centered on the means with the given standard deviation; a workday is
    skipped entirely with probability ``skip_probability`` (sick days,
    remote work — the noise that makes recurrence detection non-trivial).
    """

    morning_departure_hour: float = 7.5
    evening_departure_hour: float = 17.0
    departure_std_hours: float = 0.2
    skip_probability: float = 0.1

    def __post_init__(self) -> None:
        if not 0 <= self.skip_probability <= 1:
            raise ValueError("skip_probability must be in [0, 1]")
        if self.departure_std_hours < 0:
            raise ValueError("departure_std_hours must be non-negative")


class Commuter:
    """One commuting user on the road network."""

    def __init__(
        self,
        user_id: int,
        network: RoadNetwork,
        home: Node,
        work: Node,
        schedule: CommuterSchedule | None = None,
        speed: float = 8.0,
        sample_period: float = 120.0,
        idle_ping_period: float = 0.5 * HOUR,
    ) -> None:
        self.user_id = user_id
        self.network = network
        self.home = home
        self.work = work
        self.schedule = schedule or CommuterSchedule()
        self.speed = speed
        self.sample_period = sample_period
        self.idle_ping_period = idle_ping_period
        self._route_out = network.route(home, work)
        self._route_back = list(reversed(self._route_out))

    @property
    def home_point(self) -> Point:
        return self.network.node_position(self.home)

    @property
    def work_point(self) -> Point:
        return self.network.node_position(self.work)

    def home_area(self, margin: float = 60.0) -> Rect:
        """The "AreaCondominium" rectangle around the home anchor."""
        return Rect.from_center(self.home_point, 2 * margin, 2 * margin)

    def work_area(self, margin: float = 60.0) -> Rect:
        """The "AreaOfficeBldg" rectangle around the work anchor."""
        return Rect.from_center(self.work_point, 2 * margin, 2 * margin)

    def lbqid(self, recurrence: str = "3.Weekdays * 2.Weeks") -> LBQID:
        """The Example 2 quasi-identifier induced by this commute."""
        return commute_lbqid(
            self.home_area(),
            self.work_area(),
            name=f"commute-u{self.user_id}",
            recurrence=recurrence,
        )

    def home_lbqid(self) -> LBQID:
        """A single-element, always-on LBQID over the home area.

        This is the paper's introductory threat ("the exact coordinates
        of a private house … identify the house's owner") expressed in
        the framework's own vocabulary: declaring it makes the Trusted
        Server generalize *every* request issued from home among k
        users, so forwarded home contexts are never centered on the
        dwelling.
        """
        from repro.core.lbqid import LBQIDElement
        from repro.granularity.unanchored import UnanchoredInterval

        return LBQID(
            f"home-u{self.user_id}",
            [
                LBQIDElement(
                    self.home_area(),
                    UnanchoredInterval(0.0, 86_399.0),
                    "at-home",
                )
            ],
        )

    def trajectory(
        self, days: int, rng: np.random.Generator, start_day: int = 0
    ) -> list[STPoint]:
        """PHL samples over ``days`` consecutive days.

        Weekdays hold the two commute trips (unless skipped) plus idle
        pings at home and at work; weekend days hold idle pings at home.
        Samples are returned in chronological order.
        """
        points: list[STPoint] = []
        for day in range(start_day, start_day + days):
            day_start = day * DAY
            is_workday = day_of_week(day_start) < 5
            works_today = is_workday and (
                rng.random() >= self.schedule.skip_probability
            )
            if not works_today:
                points.extend(
                    self._idle_pings(
                        self.home_point, day_start + 7 * HOUR,
                        day_start + 22 * HOUR,
                    )
                )
                continue
            morning = day_start + HOUR * rng.normal(
                self.schedule.morning_departure_hour,
                self.schedule.departure_std_hours,
            )
            evening = day_start + HOUR * rng.normal(
                self.schedule.evening_departure_hour,
                self.schedule.departure_std_hours,
            )
            # Early-morning pings at home, the trip out, pings at work,
            # the trip back, evening pings at home.
            points.extend(
                self._idle_pings(
                    self.home_point, day_start + 6 * HOUR, morning
                )
            )
            trip_out = self.network.walk_route(
                self._route_out, morning, self.speed, self.sample_period
            )
            points.extend(STPoint(p.x, p.y, t) for p, t in trip_out)
            arrive = trip_out[-1][1]
            points.extend(self._idle_pings(self.work_point, arrive, evening))
            trip_back = self.network.walk_route(
                self._route_back, evening, self.speed, self.sample_period
            )
            points.extend(STPoint(p.x, p.y, t) for p, t in trip_back)
            home_again = trip_back[-1][1]
            points.extend(
                self._idle_pings(
                    self.home_point, home_again, day_start + 23 * HOUR
                )
            )
        return points

    def _idle_pings(
        self, anchor: Point, t_start: float, t_end: float
    ) -> list[STPoint]:
        """Stationary location updates while parked at an anchor."""
        pings = []
        t = t_start
        while t <= t_end:
            pings.append(STPoint(anchor.x, anchor.y, t))
            t += self.idle_ping_period
        return pings
