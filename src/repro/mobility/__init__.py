"""Synthetic mobility: road network, movement models, and populations.

The paper's evaluation substrate.  Real carrier traces are proprietary, so
(per DESIGN.md's substitution table) the experiments run on a synthetic
city:

* :mod:`repro.mobility.network` — a Manhattan-style grid road network with
  shortest-path routing (built on ``networkx``);
* :mod:`repro.mobility.commuter` — home/work commuters whose weekday
  round-trips realize exactly the recurring pattern of the paper's
  Examples 1–2;
* :mod:`repro.mobility.random_waypoint` — the classic random-waypoint
  model for background population;
* :mod:`repro.mobility.gauss_markov` — the Gauss–Markov correlated-
  velocity wanderer;
* :mod:`repro.mobility.population` — assembles a whole city's PHLs into a
  :class:`~repro.mod.store.TrajectoryStore`.
"""

from repro.mobility.network import RoadNetwork
from repro.mobility.commuter import Commuter, CommuterSchedule
from repro.mobility.random_waypoint import random_waypoint_trajectory
from repro.mobility.gauss_markov import gauss_markov_trajectory
from repro.mobility.population import CityConfig, SyntheticCity

__all__ = [
    "RoadNetwork",
    "Commuter",
    "CommuterSchedule",
    "random_waypoint_trajectory",
    "gauss_markov_trajectory",
    "CityConfig",
    "SyntheticCity",
]
