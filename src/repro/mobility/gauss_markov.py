"""The Gauss–Markov mobility model.

A correlated-velocity wanderer: speed and heading at each step are a
convex mix of the previous value, a long-run mean, and Gaussian noise.
Unlike random-waypoint it produces smooth, momentum-bearing tracks, which
is the regime where the multi-target tracking attacker of
:mod:`repro.attack.tracker` is strongest — benchmark E7 sweeps both
models for exactly that contrast.
"""

from __future__ import annotations

import math

import numpy as np

from repro.geometry.point import STPoint
from repro.geometry.region import Rect


def gauss_markov_trajectory(
    bounds: Rect,
    t_start: float,
    t_end: float,
    rng: np.random.Generator,
    mean_speed: float = 5.0,
    alpha: float = 0.75,
    speed_std: float = 1.0,
    heading_std: float = 0.4,
    sample_period: float = 120.0,
) -> list[STPoint]:
    """Generate one user's samples over ``[t_start, t_end]``.

    ``alpha`` in [0, 1] is the memory parameter: 1 keeps velocity
    constant, 0 is memoryless.  Users reflect off the boundary of
    ``bounds`` by reversing the offending heading component.
    """
    if not 0 <= alpha <= 1:
        raise ValueError(f"alpha must be in [0, 1], got {alpha}")
    if mean_speed <= 0:
        raise ValueError(f"mean_speed must be positive, got {mean_speed}")
    if sample_period <= 0:
        raise ValueError(
            f"sample_period must be positive, got {sample_period}"
        )

    x = rng.uniform(bounds.x_min, bounds.x_max)
    y = rng.uniform(bounds.y_min, bounds.y_max)
    speed = mean_speed
    heading = rng.uniform(0.0, 2.0 * math.pi)
    mean_heading = heading
    sqrt_term = math.sqrt(max(1.0 - alpha * alpha, 0.0))

    points: list[STPoint] = []
    t = t_start
    while t <= t_end:
        points.append(STPoint(x, y, t))
        speed = (
            alpha * speed
            + (1.0 - alpha) * mean_speed
            + sqrt_term * speed_std * rng.normal()
        )
        speed = max(speed, 0.0)
        heading = (
            alpha * heading
            + (1.0 - alpha) * mean_heading
            + sqrt_term * heading_std * rng.normal()
        )
        x += speed * math.cos(heading) * sample_period
        y += speed * math.sin(heading) * sample_period
        if x < bounds.x_min or x > bounds.x_max:
            heading = math.pi - heading
            x = min(max(x, bounds.x_min), bounds.x_max)
            mean_heading = heading
        if y < bounds.y_min or y > bounds.y_max:
            heading = -heading
            y = min(max(y, bounds.y_min), bounds.y_max)
            mean_heading = heading
        t += sample_period
    return points
