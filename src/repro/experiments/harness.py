"""Result tables for the benchmark harness.

Every experiment prints a :class:`Table`; the rendering is deliberately
plain fixed-width text so the output in ``bench_output.txt`` diffs
cleanly across runs.  :func:`telemetry_tables` converts a
:class:`~repro.obs.metrics.MetricsSnapshot` into the same table style so
benchmarks can print pipeline telemetry next to their results.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.obs.metrics import MetricsSnapshot


class Table:
    """A fixed-width result table.

    >>> t = Table("demo", ["k", "rate"])
    >>> t.add_row([2, 0.5])
    >>> print(t.render())  # doctest: +SKIP
    """

    def __init__(
        self, title: str, columns: Sequence[str], precision: int = 3
    ) -> None:
        if not columns:
            raise ValueError("a table needs at least one column")
        self.title = title
        self.columns = list(columns)
        self.precision = precision
        self.rows: list[list[str]] = []

    def add_row(self, values: Iterable[object]) -> None:
        """Append one row; floats are rounded to the table precision."""
        row = [self._format(value) for value in values]
        if len(row) != len(self.columns):
            raise ValueError(
                f"row has {len(row)} cells, table has "
                f"{len(self.columns)} columns"
            )
        self.rows.append(row)

    def _format(self, value: object) -> str:
        if isinstance(value, bool):
            return "yes" if value else "no"
        if isinstance(value, float):
            if value != value:  # NaN
                return "nan"
            if value in (float("inf"), float("-inf")):
                return "inf" if value > 0 else "-inf"
            return f"{value:.{self.precision}f}"
        return str(value)

    def render(self) -> str:
        """The table as fixed-width text."""
        widths = [
            max(
                len(self.columns[i]),
                *(len(row[i]) for row in self.rows),
            )
            if self.rows
            else len(self.columns[i])
            for i in range(len(self.columns))
        ]
        lines = [f"== {self.title} =="]
        header = "  ".join(
            name.rjust(width) for name, width in zip(self.columns, widths)
        )
        lines.append(header)
        lines.append("-" * len(header))
        for row in self.rows:
            lines.append(
                "  ".join(
                    cell.rjust(width) for cell, width in zip(row, widths)
                )
            )
        return "\n".join(lines)

    def print(self) -> None:
        """Render to stdout with surrounding blank lines."""
        print()
        print(self.render())
        print()

    def metrics(self, key_columns: int = 1) -> dict[str, float]:
        """The table's numeric cells as a flat ``{key: value}`` dict.

        Keys are ``"<row label>/<column>"`` where the row label joins
        the first ``key_columns`` cells (sweep tables keyed on several
        leading columns — density x k, zone x rate — pass the number
        that makes rows unique).  Key cells and non-numeric value cells
        are skipped.  This is what the benchmark exporter feeds to
        :class:`~repro.obs.bench.BenchArtifact`, so the comparable
        metrics of every experiment are exactly what its printed table
        shows (after the table's own rounding).
        """
        if not 1 <= key_columns < len(self.columns):
            raise ValueError(
                f"key_columns must be in [1, {len(self.columns) - 1}], "
                f"got {key_columns}"
            )
        out: dict[str, float] = {}
        for row in self.rows:
            label = " ".join(row[:key_columns])
            cells = zip(self.columns[key_columns:], row[key_columns:])
            for column, cell in cells:
                try:
                    value = float(cell)
                except ValueError:
                    if cell == "yes":
                        value = 1.0
                    elif cell == "no":
                        value = 0.0
                    else:
                        continue
                if value != value or value in (
                    float("inf"),
                    float("-inf"),
                ):
                    # NaN/inf cells are not comparable across runs and
                    # not valid strict JSON; leave them to the rendered
                    # table only.
                    continue
                out[f"{label}/{column}"] = value
        return out


def _metric_label(labels: tuple[tuple[str, str], ...]) -> str:
    return ",".join(f"{k}={v}" for k, v in labels)


def telemetry_tables(
    snapshot: MetricsSnapshot, title: str = "telemetry"
) -> list[Table]:
    """A metrics snapshot as harness tables (counters, histograms).

    Gauges ride along in the counter table; histogram rows carry the
    p50/p95/p99 summaries the registry computed.
    """
    tables: list[Table] = []
    scalars = [
        (name, labels, value, kind)
        for kind, entries in (
            ("counter", snapshot.counters),
            ("gauge", snapshot.gauges),
        )
        for (name, labels), value in sorted(entries.items())
    ]
    if scalars:
        table = Table(f"{title}: counters", ["metric", "labels", "value"])
        for name, labels, value, _kind in scalars:
            table.add_row([name, _metric_label(labels), value])
        tables.append(table)
    if snapshot.histograms:
        table = Table(
            f"{title}: histograms",
            ["metric", "labels", "count", "mean", "p50", "p95", "p99"],
        )
        for (name, labels), summary in sorted(
            snapshot.histograms.items()
        ):
            table.add_row(
                [
                    name,
                    _metric_label(labels),
                    summary.count,
                    summary.mean,
                    summary.p50,
                    summary.p95,
                    summary.p99,
                ]
            )
        tables.append(table)
    return tables
