"""Result tables for the benchmark harness.

Every experiment prints a :class:`Table`; the rendering is deliberately
plain fixed-width text so the output in ``bench_output.txt`` diffs
cleanly across runs.
"""

from __future__ import annotations

from typing import Iterable, Sequence


class Table:
    """A fixed-width result table.

    >>> t = Table("demo", ["k", "rate"])
    >>> t.add_row([2, 0.5])
    >>> print(t.render())  # doctest: +SKIP
    """

    def __init__(
        self, title: str, columns: Sequence[str], precision: int = 3
    ) -> None:
        if not columns:
            raise ValueError("a table needs at least one column")
        self.title = title
        self.columns = list(columns)
        self.precision = precision
        self.rows: list[list[str]] = []

    def add_row(self, values: Iterable[object]) -> None:
        """Append one row; floats are rounded to the table precision."""
        row = [self._format(value) for value in values]
        if len(row) != len(self.columns):
            raise ValueError(
                f"row has {len(row)} cells, table has "
                f"{len(self.columns)} columns"
            )
        self.rows.append(row)

    def _format(self, value: object) -> str:
        if isinstance(value, bool):
            return "yes" if value else "no"
        if isinstance(value, float):
            if value != value:  # NaN
                return "nan"
            if value in (float("inf"), float("-inf")):
                return "inf" if value > 0 else "-inf"
            return f"{value:.{self.precision}f}"
        return str(value)

    def render(self) -> str:
        """The table as fixed-width text."""
        widths = [
            max(
                len(self.columns[i]),
                *(len(row[i]) for row in self.rows),
            )
            if self.rows
            else len(self.columns[i])
            for i in range(len(self.columns))
        ]
        lines = [f"== {self.title} =="]
        header = "  ".join(
            name.rjust(width) for name, width in zip(self.columns, widths)
        )
        lines.append(header)
        lines.append("-" * len(header))
        for row in self.rows:
            lines.append(
                "  ".join(
                    cell.rjust(width) for cell, width in zip(row, widths)
                )
            )
        return "\n".join(lines)

    def print(self) -> None:
        """Render to stdout with surrounding blank lines."""
        print()
        print(self.render())
        print()
