"""Experiment harness: table formatting, sweeps, canonical workloads.

The benchmark modules under ``benchmarks/`` are thin: each builds a
workload from :mod:`repro.experiments.workloads`, runs a sweep with
:mod:`repro.experiments.harness`, and prints the table recorded in
EXPERIMENTS.md.
"""

from repro.experiments.harness import Table
from repro.experiments.workloads import (
    default_city,
    small_city,
    run_protected,
)

__all__ = [
    "Table",
    "default_city",
    "small_city",
    "run_protected",
]
