"""Canonical workloads shared by tests, examples, and benchmarks.

Workloads are deterministic in their seed; ``small_city`` is sized for
tests (seconds), ``default_city`` for benchmarks (tens of seconds).
``run_protected`` wires a city through the paper's full pipeline with the
most common settings and returns the simulation report.
"""

from __future__ import annotations

from functools import lru_cache

from repro.core.anonymizer import AnonymitySetScope
from repro.core.generalization import ToleranceConstraint
from repro.core.policy import PolicyTable, PrivacyProfile
from repro.core.unlinking import AlwaysUnlink, UnlinkingProvider
from repro.granularity.timeline import MINUTE
from repro.mobility.population import CityConfig, SyntheticCity
from repro.obs.config import Telemetry, TelemetryConfig
from repro.ts.simulation import LBSSimulation, RequestProfile, SimulationReport

#: The default per-service tolerance: a 1.5 km square and a 30-minute
#: window.  Section 6.1 allows "a few square miles" spatially; the
#: temporal bound is matched to the synthetic population's 30-minute
#: idle-ping cadence — anything tighter than the location-update rate
#: makes Algorithm 1 fail for lack of fresh neighbour samples (benchmark
#: E4 sweeps exactly this trade-off).
DEFAULT_TOLERANCE = ToleranceConstraint.square(1500.0, 30.0 * MINUTE)


@lru_cache(maxsize=8)
def small_city(seed: int = 11) -> SyntheticCity:
    """A test-sized city: 30 commuters, 10 wanderers, 14 days."""
    return SyntheticCity.generate(
        CityConfig(
            n_commuters=30,
            n_wanderers=10,
            nx_blocks=10,
            ny_blocks=10,
            days=14,
            seed=seed,
        )
    )


@lru_cache(maxsize=4)
def default_city(seed: int = 7) -> SyntheticCity:
    """The benchmark city: 100 commuters, 40 wanderers, 14 days."""
    return SyntheticCity.generate(CityConfig(seed=seed))


def make_policy(
    k: int,
    tolerance: ToleranceConstraint | None = None,
    k_prime_initial: int | None = None,
    k_prime_decrement: int = 1,
    service: str = "poi",
) -> PolicyTable:
    """A uniform policy table: one k for everyone, one tolerance."""
    policy = PolicyTable(
        default_profile=PrivacyProfile(
            k=k,
            k_prime_initial=k_prime_initial,
            k_prime_decrement=k_prime_decrement,
        ),
        default_tolerance=tolerance or DEFAULT_TOLERANCE,
    )
    policy.set_service_tolerance(
        service, tolerance or DEFAULT_TOLERANCE
    )
    return policy


def run_protected(
    city: SyntheticCity,
    k: int = 5,
    tolerance: ToleranceConstraint | None = None,
    unlinker: UnlinkingProvider | None = None,
    scope: AnonymitySetScope = AnonymitySetScope.PER_LBQID,
    k_prime_initial: int | None = None,
    k_prime_decrement: int = 1,
    request_profile: RequestProfile | None = None,
    register_home_lbqids: bool = False,
    telemetry: "Telemetry | TelemetryConfig | None" = None,
    seed: int = 97,
) -> SimulationReport:
    """Run the paper's full pipeline over a city and return the report.

    Pass ``telemetry`` (a :class:`TelemetryConfig` or a prebuilt
    :class:`Telemetry`) to record per-request spans and metrics; the
    snapshot is reachable via ``report.metrics_snapshot()``.
    """
    simulation = LBSSimulation(
        city,
        policy=make_policy(
            k,
            tolerance,
            k_prime_initial=k_prime_initial,
            k_prime_decrement=k_prime_decrement,
        ),
        unlinker=unlinker or AlwaysUnlink(theta=0.1),
        scope=scope,
        request_profile=request_profile,
        register_home_lbqids=register_home_lbqids,
        telemetry=telemetry,
        seed=seed,
    )
    return simulation.run()
