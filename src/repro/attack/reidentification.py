"""The home-identification attack of the paper's introduction.

"A service request containing as location information the exact
coordinates of a private house provides sufficient information to
personally identify the house's owner since the mapping of such
coordinates to home addresses is generally available and a simple look up
in a phone book (or similar sources) can reveal the people who live
there.  If several requests are made from the same location with the same
pseudonym, it is very likely that the user associated with that pseudonym
is a member of the household."

The attacker:

1. groups the SP log by pseudonym (or, when given a tracker, by track —
   stitching across pseudonym changes);
2. for each group, finds the *dwelling anchor*: the modal context center
   among requests in the home-hours window (early morning and evening);
3. looks the anchor up in the home oracle (``home → user``, the
   strongest instantiation of the phone book) and claims the nearest home
   within ``claim_radius`` — a radius above which the "address" is too
   ambiguous to look up;
4. the claim is correct when the claimed user is the group's true issuer.

Re-identification *rate* (fraction of users correctly named) is the
headline metric of benchmark E6.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.attack.tracker import TrajectoryTracker
from repro.core.requests import SPRequest
from repro.geometry.point import Point
from repro.granularity.timeline import seconds_of_day, HOUR


#: Hours-of-day windows in which a request is presumed home-anchored.
HOME_HOURS: tuple[tuple[float, float], ...] = ((5.0, 8.5), (17.5, 24.0))


def _in_home_hours(t: float) -> bool:
    offset = seconds_of_day(t)
    return any(
        lo * HOUR <= offset <= hi * HOUR for lo, hi in HOME_HOURS
    )


@dataclass(frozen=True)
class Claim:
    """One identity claim: a request group attributed to a user."""

    group_key: str
    claimed_user: int
    anchor: Point
    requests: int


@dataclass
class ReidentificationResult:
    """Outcome of running the attack over one SP log."""

    claims: list[Claim] = field(default_factory=list)
    correct: int = 0
    #: Users the attacker correctly named at least once.
    identified_users: set[int] = field(default_factory=set)

    def rate(self, population: int) -> float:
        """Fraction of the target population correctly identified."""
        if population <= 0:
            return 0.0
        return len(self.identified_users) / population

    @property
    def precision(self) -> float:
        """Fraction of claims that were correct."""
        if not self.claims:
            return 0.0
        return self.correct / len(self.claims)


class HomeIdentificationAttack:
    """Phone-book re-identification over an SP request log."""

    def __init__(
        self,
        homes: Mapping[int, Point],
        claim_radius: float = 150.0,
        min_home_requests: int = 2,
        tracker: TrajectoryTracker | None = None,
        anchor_grid: float = 50.0,
    ) -> None:
        if claim_radius <= 0:
            raise ValueError(
                f"claim_radius must be positive, got {claim_radius}"
            )
        self.homes = dict(homes)
        self.claim_radius = claim_radius
        self.min_home_requests = min_home_requests
        self.tracker = tracker
        self.anchor_grid = anchor_grid

    def run(
        self,
        log: Sequence[SPRequest],
        true_owner: Mapping[str, int],
    ) -> ReidentificationResult:
        """Attack a log; score claims with the ground-truth pseudonym map.

        ``true_owner`` maps pseudonym → real user id and is used only for
        scoring, never by the attack logic itself.
        """
        result = ReidentificationResult()
        for key, group in self._groups(log).items():
            claim = self._claim_for_group(key, group)
            if claim is None:
                continue
            result.claims.append(claim)
            truth = self._group_truth(group, true_owner)
            if truth is not None and truth == claim.claimed_user:
                result.correct += 1
                result.identified_users.add(truth)
        return result

    def _groups(
        self, log: Sequence[SPRequest]
    ) -> dict[str, list[SPRequest]]:
        """Partition the log into linkable units."""
        groups: dict[str, list[SPRequest]] = {}
        if self.tracker is not None:
            self.tracker.run(list(log))
            for request in log:
                track = self.tracker.track_of(request.msgid)
                groups.setdefault(f"track-{track}", []).append(request)
        else:
            for request in log:
                groups.setdefault(request.pseudonym, []).append(request)
        return groups

    def _claim_for_group(
        self, key: str, group: list[SPRequest]
    ) -> Claim | None:
        """Anchor the group at a dwelling and look it up, if possible."""
        home_hour_centers = [
            request.context.rect.center
            for request in group
            if _in_home_hours(request.context.interval.center)
        ]
        if len(home_hour_centers) < self.min_home_requests:
            return None
        anchor = self._modal_center(home_hour_centers)
        claimed = self._nearest_home(anchor)
        if claimed is None:
            return None
        return Claim(
            group_key=key,
            claimed_user=claimed,
            anchor=anchor,
            requests=len(group),
        )

    def _modal_center(self, centers: list[Point]) -> Point:
        """Most revisited location, at ``anchor_grid`` resolution."""
        cells = Counter(
            (
                round(center.x / self.anchor_grid),
                round(center.y / self.anchor_grid),
            )
            for center in centers
        )
        (cx, cy), _count = cells.most_common(1)[0]
        members = [
            center
            for center in centers
            if round(center.x / self.anchor_grid) == cx
            and round(center.y / self.anchor_grid) == cy
        ]
        return Point(
            sum(p.x for p in members) / len(members),
            sum(p.y for p in members) / len(members),
        )

    def _nearest_home(self, anchor: Point) -> int | None:
        """Phone-book lookup: nearest home within the claim radius."""
        best_user = None
        best_distance = self.claim_radius
        for user_id, home in self.homes.items():
            distance = anchor.distance_to(home)
            if distance <= best_distance:
                best_user = user_id
                best_distance = distance
        return best_user

    @staticmethod
    def _group_truth(
        group: list[SPRequest], true_owner: Mapping[str, int]
    ) -> int | None:
        """Majority true owner of a group (scoring only)."""
        owners = Counter(
            true_owner[request.pseudonym]
            for request in group
            if request.pseudonym in true_owner
        )
        if not owners:
            return None
        return owners.most_common(1)[0][0]
