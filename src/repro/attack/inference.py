"""Center-bias inference attack on generalized contexts.

The attack Section 7's randomization is meant to prevent: the geometry
of Algorithm 1 places the true request point at a statistically
predictable position inside the forwarded box (bounding boxes put it on
an edge with high probability; tolerance shrinking re-centers on it), so
an SP that simply guesses "the user is at the context center" — or
models the empirical offset distribution — recovers precision.

:func:`center_guess_errors` scores the naive center guess against
ground truth; :func:`edge_fraction` measures how often the true point
lies on the box boundary (a second fingerprint of deterministic
bounding).  Both should rise/fall sharply when
:class:`~repro.core.randomization.BoxRandomizer` is enabled
(benchmark E13).
"""

from __future__ import annotations

from typing import Sequence

from repro.core.requests import Request


def center_guess_errors(requests: Sequence[Request]) -> list[float]:
    """Distance from each context's center to the true request point.

    Requires TS-side requests (scoring needs ground truth); the guess
    itself uses only the SP-visible context.
    """
    errors = []
    for request in requests:
        center = request.context.rect.center
        errors.append(center.distance_to(request.location.point))
    return errors


def edge_fraction(
    requests: Sequence[Request], relative_margin: float = 0.02
) -> float:
    """Fraction of requests whose true point hugs the box boundary.

    A point is "on the edge" when it lies within ``relative_margin`` of
    the box's extent from some side.  Deterministic bounding boxes put
    the request point on an edge almost always; randomized placement
    makes edges no more likely than anywhere else.
    """
    if not requests:
        return 0.0
    on_edge = 0
    for request in requests:
        rect = request.context.rect
        p = request.location.point
        margin_x = relative_margin * max(rect.width, 1e-9)
        margin_y = relative_margin * max(rect.height, 1e-9)
        if (
            p.x - rect.x_min <= margin_x
            or rect.x_max - p.x <= margin_x
            or p.y - rect.y_min <= margin_y
            or rect.y_max - p.y <= margin_y
        ):
            on_edge += 1
    return on_edge / len(requests)


def mean_relative_center_error(requests: Sequence[Request]) -> float:
    """Center-guess error normalized by each box's half-diagonal.

    0 means the guess is exact; values near 1 mean the point is as far
    from the center as the box allows — i.e. the center carries no
    information beyond the box itself.
    """
    if not requests:
        return 0.0
    total = 0.0
    counted = 0
    for request in requests:
        rect = request.context.rect
        half_diagonal = (
            (rect.width / 2) ** 2 + (rect.height / 2) ** 2
        ) ** 0.5
        if half_diagonal <= 0:
            continue
        center = rect.center
        total += center.distance_to(request.location.point) / half_diagonal
        counted += 1
    return total / counted if counted else 0.0
