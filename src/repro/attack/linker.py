"""From tracker output to a Definition 4 ``Link()`` function.

Section 5.2: "if this association succeeds, the new request is considered
linkable (with a certain probability) to all the requests used in the
trajectory".  :class:`TrackerLink` realizes that: two requests link with
likelihood 1 when the tracker put them on the same track (0 otherwise),
optionally attenuated by a per-track confidence.

:func:`link_accuracy` scores an attacker link function against the
ground-truth link (same real user) as pairwise precision/recall — the
evaluation used in benchmark E7.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.attack.tracker import TrajectoryTracker
from repro.core.requests import Request, SPRequest


class TrackerLink:
    """A :class:`~repro.core.linkability.LinkFunction` induced by tracking."""

    def __init__(self, tracker: TrajectoryTracker) -> None:
        self._tracker = tracker

    @classmethod
    def from_requests(
        cls,
        requests: Sequence[SPRequest],
        max_speed: float = 15.0,
        track_timeout: float = 1800.0,
        follow_pseudonyms: bool = True,
    ) -> "TrackerLink":
        """Run a fresh tracker over a log and wrap it."""
        tracker = TrajectoryTracker(
            max_speed=max_speed,
            track_timeout=track_timeout,
            follow_pseudonyms=follow_pseudonyms,
        )
        tracker.run(list(requests))
        return cls(tracker)

    def link(self, a: SPRequest, b: SPRequest) -> float:
        if a.msgid == b.msgid:
            return 1.0
        track_a = self._tracker.track_of(a.msgid)
        track_b = self._tracker.track_of(b.msgid)
        if track_a is None or track_b is None:
            return 0.0
        return 1.0 if track_a == track_b else 0.0


@dataclass(frozen=True)
class LinkAccuracy:
    """Pairwise linkage quality of an attacker against ground truth."""

    precision: float
    recall: float

    @property
    def f1(self) -> float:
        if self.precision + self.recall == 0:
            return 0.0
        return (
            2 * self.precision * self.recall
            / (self.precision + self.recall)
        )


def link_accuracy(
    ts_requests: Sequence[Request],
    attacker_link,
    theta: float = 0.5,
) -> LinkAccuracy:
    """Score an attacker link function on pairwise same-user decisions.

    ``ts_requests`` are the TS-side records (ground truth user ids); the
    attacker link is evaluated on their SP views.  A pair counts as
    *claimed* when the attacker's likelihood is ≥ ``theta`` and as *true*
    when the requests share a real user.
    """
    sp_views = [request.sp_view() for request in ts_requests]
    claimed_true = 0
    claimed = 0
    true = 0
    for i in range(len(ts_requests)):
        for j in range(i + 1, len(ts_requests)):
            same_user = ts_requests[i].user_id == ts_requests[j].user_id
            linked = attacker_link.link(sp_views[i], sp_views[j]) >= theta
            if same_user:
                true += 1
            if linked:
                claimed += 1
            if linked and same_user:
                claimed_true += 1
    precision = claimed_true / claimed if claimed else 0.0
    recall = claimed_true / true if true else 0.0
    return LinkAccuracy(precision=precision, recall=recall)
