"""Adversary models.

Section 5.2 assumes the TS "can replicate the techniques used by a
possible attacker"; this subpackage holds those techniques, all operating
strictly on the SP-visible request stream (:class:`repro.core.requests.
SPRequest`) — never on ground truth:

* :mod:`repro.attack.tracker` — multi-target tracking linkage (the
  paper's reference [12], Gruteser & Hoh): associate requests into
  trajectories across pseudonym changes by spatio-temporal gating;
* :mod:`repro.attack.linker` — turn tracker output into a
  :class:`~repro.core.linkability.LinkFunction` and score it against
  ground truth;
* :mod:`repro.attack.reidentification` — the Section 1 motivating
  attack: anchor a pseudonym's requests at a dwelling, look the address
  up in the "phone book" (a home-location oracle), and name the user.
"""

from repro.attack.tracker import Track, TrajectoryTracker
from repro.attack.linker import TrackerLink, link_accuracy
from repro.attack.reidentification import (
    HomeIdentificationAttack,
    ReidentificationResult,
)
from repro.attack.inference import (
    center_guess_errors,
    edge_fraction,
    mean_relative_center_error,
)

__all__ = [
    "Track",
    "TrajectoryTracker",
    "TrackerLink",
    "link_accuracy",
    "HomeIdentificationAttack",
    "ReidentificationResult",
    "center_guess_errors",
    "edge_fraction",
    "mean_relative_center_error",
]
