"""Multi-target tracking over the SP's request log.

The paper's reference [12] (Gruteser & Hoh, *On the Anonymity of Periodic
Location Samples*) showed that anonymous location samples can be linked
into per-user trajectories with multi-target tracking.  This module
implements the standard constant-velocity nearest-neighbour variant:

* each live *track* carries its last observed position/time and a
  velocity estimate from its last two observations; its predicted
  position at the next observation time is linearly extrapolated;
* observations are processed in time order; simultaneous observations
  form a *scan* and are assigned to tracks one-to-one, cheapest
  (distance-to-prediction) first — the greedy global-nearest-neighbour
  data association of the tracking literature;
* a pairing is *gated* out when the implied displacement exceeds what
  ``max_speed`` allows, with slack for the spatial uncertainty of both
  requests' cloaked areas; unassigned observations open new tracks and
  tracks silent for ``track_timeout`` are retired.

Two requests carrying the same pseudonym are trivially linkable
(Section 5.2), so same-pseudonym requests are force-assigned to the
pseudonym's current track; the interesting adversarial power is stitching
tracks *across* pseudonym changes, which the prediction handles.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.requests import SPRequest
from repro.geometry.point import Point


@dataclass
class Track:
    """One hypothesized user trajectory in the attacker's state."""

    track_id: int
    requests: list[SPRequest] = field(default_factory=list)

    @property
    def last(self) -> SPRequest:
        return self.requests[-1]

    @property
    def last_position(self) -> Point:
        return self.last.context.rect.center

    @property
    def last_time(self) -> float:
        return self.last.context.interval.center

    @property
    def pseudonyms(self) -> set[str]:
        return {request.pseudonym for request in self.requests}

    def velocity(self) -> tuple[float, float]:
        """Estimated (vx, vy) in m/s from the last two observations."""
        if len(self.requests) < 2:
            return (0.0, 0.0)
        a = self.requests[-2]
        b = self.requests[-1]
        dt = b.context.interval.center - a.context.interval.center
        if dt <= 0:
            return (0.0, 0.0)
        pa = a.context.rect.center
        pb = b.context.rect.center
        return ((pb.x - pa.x) / dt, (pb.y - pa.y) / dt)

    def predicted_position(self, t: float, max_speed: float) -> Point:
        """Constant-velocity extrapolation to time ``t``, speed-capped."""
        dt = t - self.last_time
        vx, vy = self.velocity()
        speed = (vx * vx + vy * vy) ** 0.5
        if speed > max_speed > 0:
            vx *= max_speed / speed
            vy *= max_speed / speed
        origin = self.last_position
        return Point(origin.x + vx * dt, origin.y + vy * dt)


class TrajectoryTracker:
    """Greedy global-nearest-neighbour multi-target tracker.

    ``max_speed`` (m/s) defines the reachability gate; ``track_timeout``
    (s) retires stale tracks.  ``follow_pseudonyms`` enables the trivial
    same-pseudonym linking; disable it to measure what movement
    continuity alone reveals.
    """

    def __init__(
        self,
        max_speed: float = 15.0,
        track_timeout: float = 1800.0,
        follow_pseudonyms: bool = True,
    ) -> None:
        if max_speed <= 0:
            raise ValueError(f"max_speed must be positive, got {max_speed}")
        if track_timeout <= 0:
            raise ValueError(
                f"track_timeout must be positive, got {track_timeout}"
            )
        self.max_speed = max_speed
        self.track_timeout = track_timeout
        self.follow_pseudonyms = follow_pseudonyms
        self.tracks: list[Track] = []
        self.assignment: dict[int, int] = {}  # msgid -> track_id
        self._live: list[Track] = []
        self._pseudonym_track: dict[str, Track] = {}
        self._next_track_id = 0

    def run(self, requests: list[SPRequest]) -> list[Track]:
        """Process a whole log (scan-batched, sorted by time)."""
        ordered = sorted(requests, key=lambda r: r.context.interval.center)
        scan: list[SPRequest] = []
        for request in ordered:
            now = request.context.interval.center
            if scan and now != scan[0].context.interval.center:
                self._process_scan(scan)
                scan = []
            scan.append(request)
        if scan:
            self._process_scan(scan)
        return self.tracks

    def observe(self, request: SPRequest) -> Track:
        """Process one request immediately; returns its track.

        Streaming entry point: no scan batching, so simultaneous
        observations compete first-come-first-served.  Prefer
        :meth:`run` for offline logs.
        """
        self._process_scan([request])
        track_id = self.assignment[request.msgid]
        return next(t for t in self.tracks if t.track_id == track_id)

    # ------------------------------------------------------------------

    def _process_scan(self, scan: list[SPRequest]) -> None:
        now = scan[0].context.interval.center
        self._live = [
            track
            for track in self._live
            if now - track.last_time <= self.track_timeout
        ]
        remaining: list[SPRequest] = []
        taken: set[int] = set()
        # Pseudonym continuity first (trivially linkable, Section 5.2).
        if self.follow_pseudonyms:
            for request in scan:
                track = self._pseudonym_track.get(request.pseudonym)
                if track is not None and track.track_id not in taken:
                    if track not in self._live:
                        self._live.append(track)
                    self._extend(track, request)
                    taken.add(track.track_id)
                else:
                    remaining.append(request)
        else:
            remaining = list(scan)

        # Global nearest neighbour over the gated (track, request) pairs.
        candidates: list[tuple[float, int, int]] = []
        for r_index, request in enumerate(remaining):
            for t_index, track in enumerate(self._live):
                score = self._pair_score(track, request, now)
                if score is not None:
                    candidates.append((score, r_index, t_index))
        candidates.sort()
        assigned_requests: set[int] = set()
        for _score, r_index, t_index in candidates:
            track = self._live[t_index]
            if r_index in assigned_requests or track.track_id in taken:
                continue
            self._extend(track, remaining[r_index])
            taken.add(track.track_id)
            assigned_requests.add(r_index)

        for r_index, request in enumerate(remaining):
            if r_index not in assigned_requests:
                self._open_track(request)

    def _pair_score(
        self, track: Track, request: SPRequest, now: float
    ) -> float | None:
        """Distance to the track's prediction, or None if gated out."""
        dt = now - track.last_time
        if dt <= 0:
            return None
        position = request.context.rect.center
        slack = self._uncertainty(request) + self._uncertainty(track.last)
        gate = self.max_speed * dt + slack
        if position.distance_to(track.last_position) > gate:
            return None
        predicted = track.predicted_position(now, self.max_speed)
        return position.distance_to(predicted)

    def _extend(self, track: Track, request: SPRequest) -> None:
        track.requests.append(request)
        self.assignment[request.msgid] = track.track_id
        self._pseudonym_track[request.pseudonym] = track

    def _open_track(self, request: SPRequest) -> Track:
        track = Track(track_id=self._next_track_id)
        self._next_track_id += 1
        self.tracks.append(track)
        self._live.append(track)
        self._extend(track, request)
        return track

    @staticmethod
    def _uncertainty(request: SPRequest) -> float:
        """Half-diagonal of the request's area: its positional slack."""
        rect = request.context.rect
        return (rect.width + rect.height) / 2.0

    def track_of(self, msgid: int) -> int | None:
        """Track id a message was assigned to, if processed."""
        return self.assignment.get(msgid)
