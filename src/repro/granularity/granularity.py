"""Time granularities.

Following the paper's reference [3], a *granularity* is a mapping from an
integer index set to *granules* — non-overlapping sets of timeline instants
that are ordered consistently with their indexes.  Two families cover every
granularity the paper uses:

* :class:`UniformGranularity` — granules are consecutive intervals of a
  fixed period (seconds, minutes, hours, days, weeks, pseudo-months, and
  user-defined granularities such as "2 contiguous days");
* :class:`FilteredDayGranularity` — granules are single days selected by a
  predicate on the day of the week (``Weekdays``, ``Mondays``, …).  These
  granularities have *gaps*: instants falling on unselected days belong to
  no granule, exactly as in [3].
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable

from repro.geometry.region import Interval
from repro.granularity.timeline import DAY, day_index, day_of_week


class Granularity(ABC):
    """Abstract granularity: indexed, non-overlapping granules.

    Concrete subclasses define which granule (if any) contains a timeline
    instant and the extent of each granule.  Granule indexes are arbitrary
    integers; equality of indexes means "same granule", which is all the
    recurrence semantics needs.
    """

    def __init__(self, name: str) -> None:
        self.name = name

    @abstractmethod
    def granule_containing(self, t: float) -> int | None:
        """Index of the granule containing instant ``t``.

        Returns ``None`` when ``t`` falls in a gap of the granularity (for
        example, a Saturday under ``Weekdays``).
        """

    @abstractmethod
    def granule_interval(self, index: int) -> Interval:
        """The timeline extent ``[start, end)`` of granule ``index``.

        Returned as a closed :class:`Interval` whose ``end`` is the first
        instant *not* in the granule; callers treat it as half-open.
        """

    def same_granule(self, t1: float, t2: float) -> bool:
        """Whether two instants fall in the same (non-gap) granule."""
        g1 = self.granule_containing(t1)
        if g1 is None:
            return False
        return g1 == self.granule_containing(t2)

    def covers(self, t: float) -> bool:
        """Whether instant ``t`` belongs to some granule."""
        return self.granule_containing(t) is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r})"


class UniformGranularity(Granularity):
    """Granules are consecutive half-open intervals of a fixed period.

    Granule ``i`` spans ``[offset + i*period, offset + (i+1)*period)``.
    """

    def __init__(self, name: str, period: float, offset: float = 0.0) -> None:
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        super().__init__(name)
        self.period = period
        self.offset = offset

    def granule_containing(self, t: float) -> int | None:
        return int((t - self.offset) // self.period)

    def granule_interval(self, index: int) -> Interval:
        start = self.offset + index * self.period
        return Interval(start, start + self.period)


class FilteredDayGranularity(Granularity):
    """Granules are single days whose day-of-week passes a predicate.

    Instants on unselected days fall in a gap (``granule_containing``
    returns ``None``).  The granule index is the day index itself, so two
    instants are in the same granule exactly when they are in the same
    selected day.
    """

    def __init__(
        self, name: str, day_predicate: Callable[[int], bool]
    ) -> None:
        super().__init__(name)
        self._day_predicate = day_predicate

    def granule_containing(self, t: float) -> int | None:
        day = day_index(t)
        if self._day_predicate(day_of_week(t)):
            return day
        return None

    def granule_interval(self, index: int) -> Interval:
        if not self._day_predicate(index % 7):
            raise ValueError(
                f"day {index} is not a granule of granularity {self.name!r}"
            )
        start = index * DAY
        return Interval(start, start + DAY)
