"""Unanchored time intervals.

Definition 1 attaches to each LBQID element a ``U-TimeInterval`` — an
interval such as ``[7am, 9am]`` that "does not identify a specific time
interval on the timeline, but an infinite set of intervals, one for each
day".  :class:`UnanchoredInterval` models exactly that: a daily-recurring
window given by offsets within the day.

Windows may wrap past midnight (``[11pm, 1am]``), in which case an instant
matches when it falls either after the start or before the end within its
day.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geometry.region import Interval
from repro.granularity.timeline import DAY, HOUR, day_index, seconds_of_day


@dataclass(frozen=True, slots=True)
class UnanchoredInterval:
    """A daily-recurring time window ``[start_offset, end_offset]``.

    Offsets are seconds from midnight, each in ``[0, DAY)``.  When
    ``start_offset <= end_offset`` the window lies within one day; when
    ``start_offset > end_offset`` it wraps past midnight and the anchored
    occurrence starting on day ``d`` ends on day ``d + 1``.
    """

    start_offset: float
    end_offset: float

    def __post_init__(self) -> None:
        for value, label in (
            (self.start_offset, "start_offset"),
            (self.end_offset, "end_offset"),
        ):
            if not 0 <= value < DAY:
                raise ValueError(
                    f"{label} must be in [0, DAY), got {value}"
                )

    @classmethod
    def from_hours(cls, start_hour: float, end_hour: float) -> (
        "UnanchoredInterval"
    ):
        """Build from hours-of-day, e.g. ``from_hours(7, 9)`` for 7am-9am.

        ``from_hours(16, 18)`` is the paper's ``[4pm, 6pm]``.
        """
        return cls(start_hour * HOUR % DAY, end_hour * HOUR % DAY)

    @property
    def wraps_midnight(self) -> bool:
        """Whether the window crosses midnight."""
        return self.start_offset > self.end_offset

    @property
    def duration(self) -> float:
        """Length of each anchored occurrence, in seconds."""
        if self.wraps_midnight:
            return DAY - self.start_offset + self.end_offset
        return self.end_offset - self.start_offset

    def contains(self, t: float) -> bool:
        """Whether instant ``t`` falls in one of the denoted intervals."""
        offset = seconds_of_day(t)
        if self.wraps_midnight:
            return offset >= self.start_offset or offset <= self.end_offset
        return self.start_offset <= offset <= self.end_offset

    def anchored_on_day(self, day: int) -> Interval:
        """The concrete occurrence of this window starting on ``day``."""
        start = day * DAY + self.start_offset
        end = day * DAY + self.end_offset
        if self.wraps_midnight:
            end += DAY
        return Interval(start, end)

    def anchored_around(self, t: float) -> Interval | None:
        """The concrete occurrence containing instant ``t``, if any."""
        day = day_index(t)
        for candidate_day in (day - 1, day):
            occurrence = self.anchored_on_day(candidate_day)
            if occurrence.contains(t):
                return occurrence
        return None
