"""Time granularities, unanchored intervals, and recurrence formulas.

This subpackage is the temporal substrate the paper builds LBQIDs on.  It
implements the granularity model of Bettini, Jajodia & Wang, *Time
Granularities in Databases, Data Mining, and Temporal Reasoning* (the
paper's reference [3]) at the depth the framework needs:

* a **timeline** of seconds where ``t = 0`` is midnight starting the Monday
  of week zero (:mod:`repro.granularity.timeline`);
* **granularities** — mappings from integer indices to *granules*, i.e.
  sets of timeline instants (:mod:`repro.granularity.granularity`), with
  the standard calendar instances (seconds … months, ``Weekdays``,
  per-weekday granularities like ``Mondays``) in
  :mod:`repro.granularity.calendar`;
* **unanchored time intervals** like ``[7am, 9am]`` that denote one
  interval per day (:mod:`repro.granularity.unanchored`);
* **recurrence formulas** ``r1.G1 ▷ r2.G2 ▷ … ▷ rn.Gn`` with the
  observation-counting semantics of Definition 1
  (:mod:`repro.granularity.recurrence`).
"""

from repro.granularity.timeline import (
    DAY,
    HOUR,
    MINUTE,
    WEEK,
    day_index,
    day_of_week,
    seconds_of_day,
    time_at,
    week_index,
)
from repro.granularity.granularity import (
    FilteredDayGranularity,
    Granularity,
    UniformGranularity,
)
from repro.granularity.calendar import (
    DAYS,
    HOURS,
    MINUTES,
    MONTHS,
    WEEKDAYS,
    WEEKS,
    granularity_by_name,
    weekday_granularity,
)
from repro.granularity.unanchored import UnanchoredInterval
from repro.granularity.recurrence import RecurrenceFormula, RecurrenceTerm

__all__ = [
    "MINUTE",
    "HOUR",
    "DAY",
    "WEEK",
    "time_at",
    "seconds_of_day",
    "day_index",
    "day_of_week",
    "week_index",
    "Granularity",
    "UniformGranularity",
    "FilteredDayGranularity",
    "MINUTES",
    "HOURS",
    "DAYS",
    "WEEKS",
    "MONTHS",
    "WEEKDAYS",
    "weekday_granularity",
    "granularity_by_name",
    "UnanchoredInterval",
    "RecurrenceFormula",
    "RecurrenceTerm",
]
