"""The simulation timeline and calendar arithmetic.

All temporal values in the library are floats measured in **seconds** on a
single timeline whose origin ``t = 0`` is midnight at the start of the
Monday of week zero.  Using an abstract timeline instead of wall-clock
datetimes keeps the granularity algebra exact and the simulations
deterministic.
"""

from __future__ import annotations

import math

#: One minute, in seconds.
MINUTE = 60.0
#: One hour, in seconds.
HOUR = 60.0 * MINUTE
#: One day, in seconds.
DAY = 24.0 * HOUR
#: One week, in seconds.  ``t = 0`` is the start of a Monday, so weeks run
#: Monday through Sunday.
WEEK = 7.0 * DAY

#: Names of the days of the week, indexed by :func:`day_of_week`.
DAY_NAMES = (
    "Monday",
    "Tuesday",
    "Wednesday",
    "Thursday",
    "Friday",
    "Saturday",
    "Sunday",
)


def time_at(
    week: int = 0,
    day: int = 0,
    hour: float = 0.0,
    minute: float = 0.0,
    second: float = 0.0,
) -> float:
    """Build a timeline instant from calendar components.

    ``day`` is the day of the week, 0 = Monday … 6 = Sunday.

    >>> time_at(week=1, day=2, hour=7, minute=30)  # Wed 07:30 of week 1
    817800.0
    """
    if not 0 <= day <= 6:
        raise ValueError(f"day of week must be in 0..6, got {day}")
    return (
        week * WEEK + day * DAY + hour * HOUR + minute * MINUTE + second
    )


def seconds_of_day(t: float) -> float:
    """Offset of instant ``t`` within its day, in ``[0, DAY)``."""
    return t % DAY


def day_index(t: float) -> int:
    """Index of the day containing ``t`` (day 0 starts at ``t = 0``)."""
    return math.floor(t / DAY)


def day_of_week(t: float) -> int:
    """Day of the week containing ``t``: 0 = Monday … 6 = Sunday."""
    return day_index(t) % 7


def week_index(t: float) -> int:
    """Index of the week containing ``t`` (week 0 starts at ``t = 0``)."""
    return math.floor(t / WEEK)


def format_time(t: float) -> str:
    """Human-readable rendering, e.g. ``'week 1 Wednesday 07:30:00'``.

    Intended for logs and experiment tables, not for parsing.
    """
    week = week_index(t)
    dow = day_of_week(t)
    rem = seconds_of_day(t)
    hours = int(rem // HOUR)
    minutes = int((rem % HOUR) // MINUTE)
    seconds = rem % MINUTE
    return (
        f"week {week} {DAY_NAMES[dow]} "
        f"{hours:02d}:{minutes:02d}:{seconds:05.2f}"
    )
