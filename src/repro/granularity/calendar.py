"""Standard calendar granularities.

All the granularities the paper's examples use, plus a registry so
recurrence formulas can be parsed from text (``"3.Weekdays * 2.Weeks"``).

``MONTHS`` is a uniform 30-day pseudo-month: the simulation timeline has no
leap years or variable month lengths, and nothing in the framework depends
on exact civil months — only on the nesting of granules.
"""

from __future__ import annotations

from repro.granularity.granularity import (
    FilteredDayGranularity,
    Granularity,
    UniformGranularity,
)
from repro.granularity.timeline import (
    DAY,
    DAY_NAMES,
    HOUR,
    MINUTE,
    WEEK,
)

SECONDS = UniformGranularity("Seconds", 1.0)
MINUTES = UniformGranularity("Minutes", MINUTE)
HOURS = UniformGranularity("Hours", HOUR)
DAYS = UniformGranularity("Days", DAY)
WEEKS = UniformGranularity("Weeks", WEEK)
#: Uniform 30-day pseudo-months (see module docstring).
MONTHS = UniformGranularity("Months", 30.0 * DAY)

#: Weekdays: each Monday-through-Friday day is one granule; weekend
#: instants fall in a gap.  This is the ``G1`` of the paper's Example 2.
WEEKDAYS = FilteredDayGranularity("Weekdays", lambda dow: dow < 5)

#: Weekend days as single-granule days, the complement of ``WEEKDAYS``.
WEEKEND_DAYS = FilteredDayGranularity("WeekendDays", lambda dow: dow >= 5)


def weekday_granularity(day_of_week: int) -> FilteredDayGranularity:
    """Granularity whose granules are a single day of the week.

    The paper (Section 4) suggests granularities like ``Mondays`` or
    ``Tuesdays`` to express patterns such as "same weekday for at least 3
    weeks"; this builds them.  ``day_of_week`` is 0 = Monday … 6 = Sunday.
    """
    if not 0 <= day_of_week <= 6:
        raise ValueError(f"day of week must be in 0..6, got {day_of_week}")
    name = DAY_NAMES[day_of_week] + "s"
    return FilteredDayGranularity(name, lambda dow: dow == day_of_week)


MONDAYS = weekday_granularity(0)
TUESDAYS = weekday_granularity(1)
WEDNESDAYS = weekday_granularity(2)
THURSDAYS = weekday_granularity(3)
FRIDAYS = weekday_granularity(4)
SATURDAYS = weekday_granularity(5)
SUNDAYS = weekday_granularity(6)

_REGISTRY: dict[str, Granularity] = {
    g.name.lower(): g
    for g in (
        SECONDS,
        MINUTES,
        HOURS,
        DAYS,
        WEEKS,
        MONTHS,
        WEEKDAYS,
        WEEKEND_DAYS,
        MONDAYS,
        TUESDAYS,
        WEDNESDAYS,
        THURSDAYS,
        FRIDAYS,
        SATURDAYS,
        SUNDAYS,
    )
}


def granularity_by_name(name: str) -> Granularity:
    """Look up a standard granularity by (case-insensitive) name.

    Raises :class:`KeyError` with the list of known names when not found.
    """
    try:
        return _REGISTRY[name.lower()]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(
            f"unknown granularity {name!r}; known granularities: {known}"
        ) from None
