"""Recurrence formulas ``r1.G1 ▷ r2.G2 ▷ … ▷ rn.Gn``.

Definition 1 attaches a recurrence formula to each LBQID.  Its semantics
(quoting the paper): "each sequence must be observed within a single granule
of G1.  The value r1 denotes the minimum number of such observations.  All
the r1 observations should be within one granule of G2, and there should be
at least r2 occurrences of these observations.  The same semantics clearly
extends to n granularities."

An *observation* here is one complete match of the LBQID's element sequence,
represented by the timestamps of its matching requests.  The paper adds the
implicit condition "there are at least r_i granules of G_i, each containing
at least r_{i-1} granules of G_{i-1}", which we read (as does Example 2:
"3 observations in the same week" means three different weekdays) as:
observations counted at level 1 must occupy *distinct* granules of G1, and
in general level-i counting is over distinct satisfied G_i granules.

Alignment assumption: each granule of ``G_i`` must lie within a single
granule of ``G_{i+1}`` (the standard *groups-into* relation of the
granularity literature); all calendar granularities used in formulas
satisfy it.  Granules are assigned to the enclosing coarser granule by
their start instant.
"""

from __future__ import annotations

import re
from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.granularity.calendar import granularity_by_name
from repro.granularity.granularity import Granularity


@dataclass(frozen=True)
class RecurrenceTerm:
    """One ``r.G`` factor of a recurrence formula."""

    count: int
    granularity: Granularity

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError(
                f"recurrence count must be at least 1, got {self.count}"
            )

    def __str__(self) -> str:
        return f"{self.count}.{self.granularity.name}"


class RecurrenceFormula:
    """A parsed recurrence formula with its satisfaction semantics.

    The empty formula is equivalent to ``1.`` (paper Section 4): it is
    satisfied as soon as the element sequence has been observed once,
    anywhere on the timeline.
    """

    def __init__(self, terms: Sequence[RecurrenceTerm] = ()) -> None:
        self.terms = tuple(terms)

    @classmethod
    def parse(cls, text: str) -> "RecurrenceFormula":
        """Parse ``"3.Weekdays * 2.Weeks"`` into a formula.

        Terms are separated by ``*`` (as printed in the paper's Example 2)
        or by whitespace.  An empty or blank string yields the empty
        formula.
        """
        stripped = text.strip()
        if not stripped:
            return cls()
        terms = []
        for token in re.split(r"[*\s]+", stripped):
            if not token:
                continue
            count_text, dot, name = token.partition(".")
            if not dot or not name:
                raise ValueError(
                    f"malformed recurrence term {token!r}; expected 'r.G'"
                )
            try:
                count = int(count_text)
            except ValueError:
                raise ValueError(
                    f"malformed recurrence count in term {token!r}"
                ) from None
            terms.append(RecurrenceTerm(count, granularity_by_name(name)))
        return cls(terms)

    @property
    def is_empty(self) -> bool:
        """Whether this is the trivial ``1.`` formula."""
        return not self.terms

    @property
    def minimum_observations(self) -> int:
        """Lower bound on complete sequence observations needed to satisfy.

        The product of all counts; 1 for the empty formula.
        """
        result = 1
        for term in self.terms:
            result *= term.count
        return result

    def normalized(self) -> "RecurrenceFormula":
        """Drop a trailing ``1.Gn`` term, which the paper notes is implicit.

        Only a single trailing term is dropped, and only when the formula
        has more than one term (``1.G`` alone still constrains each
        observation to fit within one granule of ``G``).
        """
        if len(self.terms) > 1 and self.terms[-1].count == 1:
            return RecurrenceFormula(self.terms[:-1])
        return self

    def nesting_violations(
        self, horizon_days: int = 90
    ) -> list[tuple[str, str, int]]:
        """Check the groups-into alignment assumption (module docstring).

        The counting semantics assigns each granule of ``G_i`` to the
        granule of ``G_{i+1}`` containing its *start*; that is exact
        only when no ``G_i`` granule straddles a ``G_{i+1}`` boundary.
        This scans the first ``horizon_days`` of the timeline and
        returns one ``(fine_name, coarse_name, granule_index)`` entry
        per straddling granule found — an empty list means the formula's
        granularities nest cleanly (all standard calendar combinations
        except e.g. Weeks-into-Months do).
        """
        from repro.granularity.timeline import DAY

        violations = []
        horizon = horizon_days * DAY
        for fine_term, coarse_term in zip(self.terms, self.terms[1:]):
            fine = fine_term.granularity
            coarse = coarse_term.granularity
            seen: set[int] = set()
            t = 0.0
            while t < horizon:
                granule = fine.granule_containing(t)
                if granule is not None and granule not in seen:
                    seen.add(granule)
                    interval = fine.granule_interval(granule)
                    start_home = coarse.granule_containing(interval.start)
                    # The last instant strictly inside the fine granule
                    # must live in the same coarse granule.
                    end_home = coarse.granule_containing(
                        min(interval.end, horizon) - 1e-6
                    )
                    if start_home != end_home:
                        violations.append(
                            (fine.name, coarse.name, granule)
                        )
                t += DAY / 4.0
        return violations

    def observation_granule(self, timestamps: Iterable[float]) -> int | None:
        """The G1 granule an observation falls in, or ``None`` if invalid.

        An observation is valid at level 1 when all its timestamps lie in a
        single granule of G1 (no gaps, no straddling).  With the empty
        formula every non-empty observation is valid; granule 0 is used as
        the single "whole timeline" granule.
        """
        ts = list(timestamps)
        if not ts:
            return None
        if self.is_empty:
            return 0
        g1 = self.terms[0].granularity
        granules = {g1.granule_containing(t) for t in ts}
        if len(granules) != 1:
            return None
        granule = granules.pop()
        return granule  # may be None when all timestamps sit in a gap

    def satisfied_by(
        self, observations: Iterable[Sequence[float]]
    ) -> bool:
        """Whether a set of sequence observations satisfies the formula.

        ``observations`` is an iterable of timestamp collections, one per
        complete match of the LBQID's element sequence.
        """
        if self.is_empty:
            return any(
                self.observation_granule(obs) is not None
                for obs in observations
            )
        return self.satisfaction_level(observations) >= len(self.terms)

    def satisfaction_level(
        self, observations: Iterable[Sequence[float]]
    ) -> int:
        """How many leading terms of the formula are already satisfied.

        Returns ``i`` when the counting condition holds through term ``i``
        (so ``len(self.terms)`` means fully satisfied).  Useful both for
        satisfaction checks and for progress reporting in the monitor.
        """
        if self.is_empty:
            return 0
        # Level 1: distinct G1 granules holding a valid observation.
        current = {
            granule
            for granule in (
                self.observation_granule(obs) for obs in observations
            )
            if granule is not None
        }
        level = 0
        for i, term in enumerate(self.terms):
            if len(current) < term.count:
                break
            level = i + 1
            if i + 1 == len(self.terms):
                break
            # Group the satisfied G_i granules into G_{i+1} granules and
            # keep those containing at least `term.count` of them.
            coarser = self.terms[i + 1].granularity
            counts: Counter[int] = Counter()
            for granule in current:
                start = term.granularity.granule_interval(granule).start
                enclosing = coarser.granule_containing(start)
                if enclosing is not None:
                    counts[enclosing] += 1
            current = {g for g, c in counts.items() if c >= term.count}
        return level

    def __str__(self) -> str:
        if self.is_empty:
            return "1."
        return " * ".join(str(term) for term in self.terms)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RecurrenceFormula({self})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RecurrenceFormula):
            return NotImplemented
        return self.terms == other.terms

    def __hash__(self) -> int:
        return hash(self.terms)
