"""The staged request engine and its pipeline builder.

:class:`Engine` is the Trusted Server's machine room: it owns the
collaborators (trajectory store, generalizer, unlinker, session store,
audit trail, telemetry) and drives each request through an ordered
sequence of :class:`~repro.engine.stages.Stage` objects.  The default
pipeline reproduces the Section 6.1 strategy exactly; experiments swap
stages through :class:`PipelineBuilder` instead of subclass surgery::

    engine = Engine(
        store,
        policy=policy,
        pipeline=(
            PipelineBuilder.default()
            .remove("unlink")                  # ablate Section 6.3
            .replace("generalize", MyStage())  # alternative Algorithm 1
        ),
    )

Batch ingestion (:meth:`Engine.process_batch`) accepts a timeline of
:class:`BatchItem` location updates and requests: runs of consecutive
location updates are grouped per user and ingested through
:meth:`~repro.mod.store.TrajectoryStore.add_points`, bumping the store
``version`` once per run instead of once per point — bulk replay then
stops thrashing version-keyed caches (e.g. the SLO monitor's incremental
candidate sets) while every request still observes exactly the store
state it would have seen under one-at-a-time processing.

Per-stage telemetry lands for free: ``engine.stage_ms{stage=...}``
latency histograms and ``engine.stage_decisions{stage=...,decision=...}``
counters, recorded only when telemetry is enabled (the disabled path
walks the stages with zero instrumentation overhead).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.core.generalization import (
    SpatioTemporalGeneralizer,
    ToleranceConstraint,
)
from repro.core.lbqid import LBQID
from repro.core.matching import LBQIDMonitor
from repro.core.policy import PolicyTable
from repro.core.randomization import BoxRandomizer
from repro.core.requests import Request, SPRequest
from repro.core.unlinking import NeverUnlink, UnlinkingProvider
from repro.engine.audit import AuditTrail
from repro.engine.context import (
    AnonymitySetScope,
    AnonymizerEvent,
    RequestContext,
)
from repro.engine.session import (
    InMemorySessionStore,
    LBQIDState,
    SessionStore,
    UserSession,
)
from repro.engine.stages import (
    Audit,
    Generalize,
    MonitorMatch,
    QuietGate,
    RiskPolicy,
    Stage,
    Unlink,
)
from repro.geometry.point import STPoint
from repro.mod.store import TrajectoryStore
from repro.obs.config import Telemetry, TelemetryConfig, resolve_telemetry


class PipelineBuilder:
    """Assembles the ordered stage list of an :class:`Engine`.

    Stages are addressed by their ``name`` attribute; all mutators
    return ``self`` for chaining.  A builder holds stage *instances*, so
    build each engine from its own builder (binding a stage to two
    engines is rejected at build time).
    """

    def __init__(self, stages: Iterable[Stage] = ()) -> None:
        self._stages: list[Stage] = list(stages)

    @classmethod
    def default(cls) -> "PipelineBuilder":
        """The paper's Section 6.1 pipeline, in order."""
        return cls(
            [
                QuietGate(),
                MonitorMatch(),
                Generalize(),
                Unlink(),
                RiskPolicy(),
                Audit(),
            ]
        )

    @property
    def stage_names(self) -> list[str]:
        return [stage.name for stage in self._stages]

    def _index_of(self, name: str) -> int:
        for index, stage in enumerate(self._stages):
            if stage.name == name:
                return index
        raise KeyError(
            f"no stage named {name!r}; pipeline has {self.stage_names}"
        )

    def add(self, stage: Stage) -> "PipelineBuilder":
        """Append a stage at the end of the pipeline."""
        self._stages.append(stage)
        return self

    def insert_before(self, name: str, stage: Stage) -> "PipelineBuilder":
        """Insert ``stage`` immediately before the stage named ``name``."""
        self._stages.insert(self._index_of(name), stage)
        return self

    def insert_after(self, name: str, stage: Stage) -> "PipelineBuilder":
        """Insert ``stage`` immediately after the stage named ``name``."""
        self._stages.insert(self._index_of(name) + 1, stage)
        return self

    def replace(self, name: str, stage: Stage) -> "PipelineBuilder":
        """Swap the stage named ``name`` for ``stage``."""
        self._stages[self._index_of(name)] = stage
        return self

    def remove(self, name: str) -> "PipelineBuilder":
        """Drop the stage named ``name`` from the pipeline."""
        del self._stages[self._index_of(name)]
        return self

    def build(self, engine: "Engine") -> tuple[Stage, ...]:
        """Bind every stage to ``engine``; return the immutable order."""
        if not self._stages:
            raise ValueError("cannot build an empty pipeline")
        for stage in self._stages:
            if stage.engine is not None and stage.engine is not engine:
                raise ValueError(
                    f"stage {stage.name!r} is already bound to another "
                    "engine; build each engine from its own "
                    "PipelineBuilder"
                )
            stage.bind(engine)
        return tuple(self._stages)


@dataclass(frozen=True)
class BatchItem:
    """One timeline entry for :meth:`Engine.process_batch`.

    ``service=None`` marks a plain location update ("a location update
    may be received by the TS even if the user did not make a request");
    any string makes the item a service request for that service.
    """

    user_id: int
    location: STPoint
    service: str | None = None
    data: Mapping[str, object] | None = None

    @property
    def is_request(self) -> bool:
        return self.service is not None


class Engine:
    """The Trusted Server rebuilt as an explicit staged pipeline.

    Owns all shared collaborators and the per-user session state (via
    ``sessions``); processes one request with :meth:`process` and a
    mixed update/request timeline with :meth:`process_batch`.  The
    public :class:`~repro.core.anonymizer.TrustedAnonymizer` facade
    wraps one of these.
    """

    def __init__(
        self,
        store: TrajectoryStore,
        policy: PolicyTable | None = None,
        unlinker: UnlinkingProvider | None = None,
        scope: AnonymitySetScope = AnonymitySetScope.PER_LBQID,
        default_cloak: ToleranceConstraint | None = None,
        randomizer: BoxRandomizer | None = None,
        quiet_period: float = 0.0,
        telemetry: "Telemetry | TelemetryConfig | None" = None,
        sessions: SessionStore | None = None,
        audit: str = "full",
        pipeline: "PipelineBuilder | Sequence[Stage] | None" = None,
    ) -> None:
        if quiet_period < 0:
            raise ValueError(
                f"quiet_period must be non-negative, got {quiet_period}"
            )
        self.store = store
        self.policy = policy or PolicyTable()
        self.unlinker = unlinker or NeverUnlink()
        self.scope = scope
        self.default_cloak = default_cloak
        #: Optional Section 7 randomization: certified contexts are
        #: re-placed at random within the tolerance budget before
        #: forwarding, defeating center-bias inference (bench E13).
        self.randomizer = randomizer
        #: Seconds of service silence after a pseudonym rotation — the
        #: mix-zone "no service inside the zone" mechanic (bench E16).
        self.quiet_period = quiet_period
        self.telemetry = resolve_telemetry(telemetry)
        self.generalizer = SpatioTemporalGeneralizer(store)
        #: All per-user mutable state (monitors, anonymity-set caches,
        #: quiet deadlines, pseudonyms) behind the SessionStore protocol.
        self.sessions: SessionStore = (
            sessions if sessions is not None else InMemorySessionStore()
        )
        #: Decision tallies, SP log, and (mode permitting) full events.
        self.audit = AuditTrail(mode=audit)
        if pipeline is None:
            pipeline = PipelineBuilder.default()
        if isinstance(pipeline, PipelineBuilder):
            self.stages = pipeline.build(self)
        else:
            self.stages = PipelineBuilder(pipeline).build(self)
        # Span names are per-request hot-path strings; build them once.
        self._stage_spans = tuple(
            (stage, f"engine.{stage.name}") for stage in self.stages
        )
        self._msgid = 0

    # ------------------------------------------------------------------
    # registration and location updates
    # ------------------------------------------------------------------

    def register_lbqid(self, user_id: int, lbqid: LBQID) -> None:
        """Attach an LBQID specification for a user (Section 6.1 step 1)."""
        self.sessions.session(user_id).lbqids.append(
            LBQIDState(
                monitor=LBQIDMonitor(lbqid, telemetry=self.telemetry)
            )
        )

    def register_lbqids(
        self, user_id: int, lbqids: Iterable[LBQID]
    ) -> None:
        """Attach several LBQIDs for a user."""
        for lbqid in lbqids:
            self.register_lbqid(user_id, lbqid)

    def report_location(self, user_id: int, location: STPoint) -> None:
        """Ingest a location update that is not a service request.

        "A location update may be received by the TS even if the user did
        not make a request when being at that location" — these updates
        populate the PHLs that define everyone's anonymity sets.
        """
        self.store.add_point(user_id, location)
        self.telemetry.count("ts.location_updates")

    # ------------------------------------------------------------------
    # request processing
    # ------------------------------------------------------------------

    def process(
        self,
        user_id: int,
        location: STPoint,
        service: str = "default",
        data: Mapping[str, object] | None = None,
    ) -> AnonymizerEvent:
        """Run one service request through the pipeline, end to end.

        Returns the audit event; the outgoing SP request (if forwarded)
        lands on the trail returned by :meth:`sp_log`.
        """
        telemetry = self.telemetry
        if not telemetry.enabled:
            return self._process(user_id, location, service, data)
        if not telemetry.profiling:
            return self._process_traced(
                user_id, location, service, data, telemetry
            )
        # Publish the request bracket for the sampling profiler: the
        # sampler thread reads this slot at every tick, so samples
        # between stages land in the "(other)" bucket of request time
        # rather than leaking into idle.
        slot = telemetry.activity
        slot.trace_id = telemetry.active_trace_id()
        slot.in_request = True
        try:
            return self._process_traced(
                user_id, location, service, data, telemetry
            )
        finally:
            slot.in_request = False
            slot.stage = None
            slot.trace_id = None

    def _process_traced(
        self,
        user_id: int,
        location: STPoint,
        service: str,
        data: Mapping[str, object] | None,
        telemetry: Telemetry,
    ) -> AnonymizerEvent:
        """The instrumented body of :meth:`process`."""
        with telemetry.span(
            "ts.request", user_id=user_id, service=service
        ) as span:
            with telemetry.timer("ts.request_latency_ms"):
                event = self._process(user_id, location, service, data)
            span.annotate(decision=event.decision.value)
        self._record(event, telemetry)
        return event

    def process_batch(
        self, items: Iterable[BatchItem]
    ) -> list[AnonymizerEvent]:
        """Replay a timeline of updates and requests through the engine.

        Items must arrive in timestamp order (per user at minimum, as
        everywhere else in the TS).  Consecutive location updates are
        buffered and ingested per user via
        :meth:`TrajectoryStore.add_points` right before the next request
        runs — each request therefore sees exactly the PHL state it
        would have seen online, while pure-replay stretches pay one
        store-version bump per run of updates instead of one per point.
        Returns the audit events of the *requests*, in order.
        """
        events: list[AnonymizerEvent] = []
        pending: dict[int, list[STPoint]] = {}
        pending_points = 0
        telemetry = self.telemetry

        def flush() -> None:
            nonlocal pending_points
            if not pending:
                return
            for update_user, points in pending.items():
                self.store.add_points(update_user, points)
            if telemetry.enabled:
                telemetry.count("ts.location_updates", pending_points)
                telemetry.count("engine.batch_flushes")
            pending.clear()
            pending_points = 0

        for item in items:
            if item.is_request:
                flush()
                assert item.service is not None
                events.append(
                    self.process(
                        item.user_id,
                        item.location,
                        item.service,
                        item.data,
                    )
                )
            else:
                pending.setdefault(item.user_id, []).append(
                    item.location
                )
                pending_points += 1
        flush()
        return events

    def _process(
        self,
        user_id: int,
        location: STPoint,
        service: str,
        data: Mapping[str, object] | None,
    ) -> AnonymizerEvent:
        """Seed the request context and walk the stages."""
        # Every request is also a location update: "for each request r_i
        # there must be an element in the PHL of User(r_i)".
        self.store.add_point(user_id, location)
        telemetry = self.telemetry
        telemetry.count("ts.location_updates")
        self._msgid += 1
        request = Request.issue(
            msgid=self._msgid,
            user_id=user_id,
            pseudonym=self.sessions.pseudonym(user_id),
            location=location,
            service=service,
            data=data,
        )
        ctx = RequestContext(
            user_id=user_id,
            location=location,
            service=service,
            request=request,
            profile=self.policy.profile_for(user_id, service),
            tolerance=self.policy.tolerance_for(service),
            session=self.sessions.session(user_id),
            data=data,
        )
        if telemetry.enabled:
            self._run_instrumented(ctx, telemetry)
        else:
            self._run(ctx)
        event = ctx.event
        assert event is not None, (
            "pipeline finished without an audit event; custom pipelines "
            "must end with an Audit stage (or set ctx.event themselves)"
        )
        return event

    def _run(self, ctx: RequestContext) -> None:
        """The uninstrumented stage walk (telemetry disabled)."""
        for stage in self.stages:
            if ctx.decision is not None and not stage.terminal:
                continue
            decision = stage.handle(ctx)
            if decision is not None and ctx.decision is None:
                ctx.decision = decision

    def _run_instrumented(
        self, ctx: RequestContext, telemetry: Telemetry
    ) -> None:
        """The same walk, timing every stage that actually ran.

        When the request arrived with a distributed trace (the serve
        dispatcher activated a remote span around :meth:`process`), each
        stage additionally gets its own ``engine.<stage>`` span in that
        tree and the ``engine.stage_ms`` observation carries the
        trace_id as a bucket exemplar.  Local (non-wire) runs keep the
        exact pre-trace span volume.
        """
        trace_id = telemetry.active_trace_id()
        # The enclosing ts.request span — stage spans are leaves under
        # it, emitted via the cheap path (no Span object per stage).
        # Without a sink no record could be delivered, so the walk
        # stays on the span-free branch (exemplars still carry
        # ``trace_id``).
        parent = (
            telemetry.tracer.current()
            if trace_id is not None and telemetry.tracer.sinks
            else None
        )
        # Stage attribution for the sampling profiler: the engine
        # publishes the stage currently in handle() through the shared
        # activity slot (the stage spans above are emitted *after* the
        # fact, so the sampler cannot learn the stage any other way).
        slot = telemetry.activity if telemetry.profiling else None
        for stage, span_name in self._stage_spans:
            if ctx.decision is not None and not stage.terminal:
                continue
            if slot is not None:
                slot.stage = stage.name
            start = time.perf_counter()
            if parent is None:
                decision = stage.handle(ctx)
                end = time.perf_counter()
            else:
                try:
                    decision = stage.handle(ctx)
                except BaseException:
                    telemetry.emit_span(
                        span_name, start, time.perf_counter(), parent
                    )
                    raise
                end = time.perf_counter()
                if decision is not None:
                    telemetry.emit_span(
                        span_name, start, end, parent,
                        decision=decision.value,
                    )
                else:
                    telemetry.emit_span(span_name, start, end, parent)
            if slot is not None:
                slot.stage = None
            elapsed_ms = (end - start) * 1000.0
            telemetry.observe(
                "engine.stage_ms",
                elapsed_ms,
                trace_id=trace_id,
                stage=stage.name,
            )
            if decision is not None and ctx.decision is None:
                ctx.decision = decision
                telemetry.count(
                    "engine.stage_decisions",
                    stage=stage.name,
                    decision=decision.value,
                )

    def _record(
        self, event: AnonymizerEvent, telemetry: Telemetry
    ) -> None:
        """Per-request metrics and the streaming decision event.

        The ``ts.decision`` event mirrors the audit record for online
        consumers (:class:`~repro.obs.slo.PrivacyMonitor`, JSONL
        exports).  It carries the TS-side ground-truth ``user_id``
        alongside the pseudonym — telemetry stays inside the trust
        boundary, so exported JSONL files must be treated as
        TS-confidential.
        """
        telemetry.count("ts.requests")
        telemetry.count("ts.decisions", decision=event.decision.value)
        if event.pseudonym_rotated:
            telemetry.count("ts.pseudonym_rotations")
        result = event.generalization
        if result is not None:
            telemetry.observe(
                "ts.anonymity_set_size", len(result.anonymity_ids)
            )
            telemetry.observe("ts.box_area_m2", result.box.rect.area)
            telemetry.observe(
                "ts.box_duration_s", result.box.interval.duration
            )
        context = event.request.context
        fields: dict[str, object] = dict(
            t=event.request.t,
            user_id=event.request.user_id,
            pseudonym=event.request.pseudonym,
            service=event.request.service,
            decision=event.decision.value,
            forwarded=event.forwarded,
            lbqid=event.lbqid_name,
            hk=event.hk_anonymity,
            step=event.step,
            required_k=event.required_k,
            rotated=event.pseudonym_rotated,
            context=(
                context.rect.x_min,
                context.rect.y_min,
                context.rect.x_max,
                context.rect.y_max,
                context.interval.start,
                context.interval.end,
            ),
        )
        # Only traced (wire-propagated) requests grow the event schema —
        # offline replays keep producing byte-identical decision events.
        trace_id = telemetry.active_trace_id()
        if trace_id is not None:
            fields["trace_id"] = trace_id
        telemetry.event("ts.decision", **fields)

    # ------------------------------------------------------------------
    # evaluation helpers
    # ------------------------------------------------------------------

    @property
    def events(self) -> list[AnonymizerEvent]:
        """Retained audit events (empty under ``audit="counts"``)."""
        return self.audit.events

    def session(self, user_id: int) -> UserSession:
        """The user's session state (created on first access)."""
        return self.sessions.session(user_id)

    def sp_log(self, service: str | None = None) -> list[SPRequest]:
        """The requests a service provider actually received."""
        return self.audit.sp_log(service)

    def forwarded_requests(self) -> list[Request]:
        """TS-side records of all forwarded requests (evaluation only)."""
        return self.audit.forwarded_requests()

    def decision_counts(self) -> dict:
        """Histogram of decisions over all processed requests."""
        return self.audit.decision_counts()
