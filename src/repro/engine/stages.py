"""The Section 6.1 strategy as six small, swappable pipeline stages.

Each stage implements ``handle(ctx) -> Decision | None``: return a
:class:`Decision` to resolve the request (the engine then skips straight
to the terminal stages), return ``None`` to pass the context on.  The
default order rebuilds the old ``TrustedAnonymizer._process`` monolith
exactly:

``QuietGate`` → ``MonitorMatch`` → ``Generalize`` → ``Unlink`` →
``RiskPolicy`` → ``Audit``

Stages are bound to one :class:`~repro.engine.pipeline.Engine` at build
time (:meth:`Stage.bind`) and reach the engine's collaborators — store,
generalizer, unlinker, session store, policy knobs — through it.  They
hold no per-request state of their own; everything request-scoped lives
on the :class:`~repro.engine.context.RequestContext`, which is what
makes stage insertion/replacement safe.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.generalization import GeneralizationResult, default_context
from repro.core.matching import MatchEvent, PartialMatch
from repro.core.policy import RiskAction
from repro.engine.context import (
    AnonymitySetScope,
    AnonymizerEvent,
    Decision,
    RequestContext,
)
from repro.engine.session import LBQIDState

if TYPE_CHECKING:
    from repro.engine.pipeline import Engine


class Stage:
    """Base class for pipeline stages.

    ``name`` labels the stage in builder operations and telemetry
    (``engine.stage_ms{stage=<name>}``); ``terminal`` marks stages that
    must run even after an earlier stage resolved the request (the
    audit tail of the pipeline).
    """

    #: Builder/telemetry label; subclasses must override.
    name: str = ""
    #: Terminal stages run unconditionally, after the decision.
    terminal: bool = False

    def __init__(self) -> None:
        self.engine: "Engine | None" = None

    def bind(self, engine: "Engine") -> "Stage":
        """Attach this stage to the engine whose pipeline it joins."""
        self.engine = engine
        return self

    def handle(self, ctx: RequestContext) -> Decision | None:
        """Process one request context; a Decision resolves it."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class QuietGate(Stage):
    """Suppress requests inside the post-unlinking quiet window.

    The Section 6.3 mix-zone mechanic: after a pseudonym rotation the
    service stays disabled for ``quiet_period`` seconds so the SP sees a
    gap, not a continuous trajectory, across the rotation.  The location
    update has already been ingested; nothing crosses the trust
    boundary.
    """

    name = "quiet_gate"

    def handle(self, ctx: RequestContext) -> Decision | None:
        quiet_until = ctx.session.quiet_until
        if quiet_until is not None and ctx.location.t < quiet_until:
            return Decision.QUIET
        return None


class MonitorMatch(Stage):
    """Feed the request to the user's LBQID monitors; pick the match.

    Implements the paper's simplifying assumption "each request can
    match an element in only one of the LBQIDs defined for a certain
    user": every monitor is fed, and with several candidates the
    most-advanced partial wins (ties break deterministically toward the
    earliest-registered LBQID — the sort is stable).  A request matching
    nothing is forwarded as-is under the default cloak.
    """

    name = "monitor_match"

    def handle(self, ctx: RequestContext) -> Decision | None:
        assert self.engine is not None
        state, match = self.select_match(ctx)
        if state is None or match is None:
            context = default_context(
                ctx.location, self.engine.default_cloak
            )
            ctx.request = ctx.request.with_context(context)
            ctx.forwarded = True
            return Decision.FORWARDED
        ctx.state = state
        ctx.match = match
        ctx.step = state.steps
        ctx.required_k = ctx.profile.required_k_at_step(state.steps)
        return None

    @staticmethod
    def select_match(
        ctx: RequestContext,
    ) -> tuple[LBQIDState | None, MatchEvent | None]:
        """Feed every monitor; return the winning (state, event) pair."""
        matched: list[tuple[int, LBQIDState, MatchEvent]] = []
        for state in ctx.session.lbqids:  # feed them all
            event = state.monitor.feed(ctx.location)
            if event.matched_any_element:
                progress = max(
                    (p.next_index for p in event.advanced), default=1
                )
                matched.append((progress, state, event))
        if not matched:
            return None, None
        matched.sort(key=lambda item: item[0], reverse=True)
        _progress, state, event = matched[0]
        return state, event


class Generalize(Stage):
    """Run the right Algorithm 1 branch for the matched request.

    On success (historical k-anonymity preserved within tolerance) the
    certified box — optionally re-placed by the Section 7 randomizer —
    becomes the outgoing context.  On failure the result is left on the
    context for the unlinking / risk stages to report.
    """

    name = "generalize"

    def handle(self, ctx: RequestContext) -> Decision | None:
        assert self.engine is not None
        state = ctx.state
        match = ctx.match
        assert state is not None and match is not None
        result = self._generalize(ctx, state, match)
        ctx.result = result
        state.steps += 1
        if not result.hk_anonymity:
            return None
        context = result.box
        randomizer = self.engine.randomizer
        if randomizer is not None:
            context = randomizer.randomize(
                context, ctx.location, ctx.tolerance
            )
        ctx.request = ctx.request.with_context(context)
        ctx.forwarded = True
        return Decision.GENERALIZED

    def _generalize(
        self,
        ctx: RequestContext,
        state: LBQIDState,
        match: MatchEvent,
    ) -> GeneralizationResult:
        assert self.engine is not None
        engine = self.engine
        generalizer = engine.generalizer
        required_k = ctx.profile.required_k_at_step(state.steps)
        initial_k = ctx.profile.required_k_at_step(0)

        if engine.scope is AnonymitySetScope.PER_LBQID:
            if state.anonymity_ids is None:
                result = generalizer.generalize_initial(
                    ctx.location,
                    initial_k,
                    ctx.tolerance,
                    requester=ctx.user_id,
                )
                if result.hk_anonymity:
                    # Cache the set only when the selection succeeded, so
                    # a failed attempt is retried from scratch next time
                    # (new candidates may have appeared by then).
                    state.anonymity_ids = result.selected_ids
                return result
            result = generalizer.generalize_subsequent(
                ctx.location,
                state.anonymity_ids,
                ctx.tolerance,
                required=max(required_k - 1, 0),
            )
            if result.hk_anonymity:
                # k' schedule: permanently drop the users not kept at
                # this step, so the per-step anonymity sets are *nested*
                # and the survivors stay LT-consistent with every
                # context of the trace ("decreasing its value at each
                # point in the trace", Section 6.2).
                state.anonymity_ids = result.selected_ids
            return result

        # PER_OBSERVATION scope: the id set lives on each partial match.
        partial = self._advanced_partial(match)
        if partial is not None and "anon_ids" in partial.payload:
            result = generalizer.generalize_subsequent(
                ctx.location,
                partial.payload["anon_ids"],
                ctx.tolerance,
                required=max(required_k - 1, 0),
            )
            if result.hk_anonymity:
                partial.payload["anon_ids"] = result.selected_ids
            return result
        result = generalizer.generalize_initial(
            ctx.location, initial_k, ctx.tolerance, requester=ctx.user_id
        )
        if match.started is not None and result.hk_anonymity:
            match.started.payload["anon_ids"] = result.selected_ids
        return result

    @staticmethod
    def _advanced_partial(match: MatchEvent) -> PartialMatch | None:
        """The most-progressed partial this request extended, if any."""
        if not match.advanced:
            return None
        return max(match.advanced, key=lambda p: p.next_index)


class Unlink(Stage):
    """Try to unlink future requests after a failed generalization.

    Unlinking only helps "before a complete LBQID is matched" — if the
    pattern is already complete (possibly completed by this very
    request), forwarding an under-generalized context would break
    Definition 8 for a matched, link-connected set, so the request falls
    through to the at-risk handling even when the pseudonym can still be
    rotated to protect the future.
    """

    name = "unlink"

    def handle(self, ctx: RequestContext) -> Decision | None:
        assert self.engine is not None
        engine = self.engine
        state = ctx.state
        result = ctx.result
        assert state is not None and result is not None
        outcome = engine.unlinker.attempt_unlink(
            ctx.user_id, ctx.location
        )
        too_late = state.monitor.matched
        if not outcome.success:
            return None
        engine.sessions.rotate_pseudonym(ctx.user_id)
        ctx.session.reset_patterns()  # Section 6.1 step 2
        ctx.pseudonym_rotated = True
        if engine.quiet_period > 0:
            ctx.session.quiet_until = (
                ctx.location.t + engine.quiet_period
            )
        if too_late:
            return None
        # Forward under the old pseudonym (already on the request);
        # that pseudonym is now retired with the LBQID incomplete.
        ctx.request = ctx.request.with_context(result.box)
        ctx.forwarded = True
        return Decision.UNLINKED


class RiskPolicy(Stage):
    """Handle the user "at risk of identification" per their policy.

    The paper: the user is notified "so that he may refrain from sending
    sensitive information, disrupt the service, or take other actions" —
    modeled as suppressing the request or forwarding it anyway.
    """

    name = "risk_policy"

    def handle(self, ctx: RequestContext) -> Decision | None:
        result = ctx.result
        assert result is not None
        ctx.request = ctx.request.with_context(result.box)
        if ctx.profile.on_risk is RiskAction.SUPPRESS:
            ctx.forwarded = False
            return Decision.SUPPRESSED
        ctx.forwarded = True
        return Decision.AT_RISK_FORWARDED


class Audit(Stage):
    """Terminal stage: freeze the audit record and hand it to the trail.

    Runs for every request, whatever earlier stage resolved it, and is
    the single place an :class:`AnonymizerEvent` is built — replacement
    pipelines keep a consistent audit trail for free as long as they end
    with this stage.
    """

    name = "audit"
    terminal = True

    def handle(self, ctx: RequestContext) -> Decision | None:
        assert self.engine is not None
        assert ctx.decision is not None
        event = AnonymizerEvent(
            request=ctx.request,
            decision=ctx.decision,
            forwarded=ctx.forwarded,
            lbqid_name=ctx.lbqid_name,
            hk_anonymity=(
                ctx.result.hk_anonymity if ctx.result is not None else None
            ),
            lbqid_matched=(
                ctx.match.lbqid_matched if ctx.match is not None else False
            ),
            generalization=ctx.result,
            step=ctx.step,
            required_k=ctx.required_k,
            pseudonym_rotated=ctx.pseudonym_rotated,
        )
        ctx.event = event
        self.engine.audit.record(event)
        return None
