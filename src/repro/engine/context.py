"""Decision vocabulary and the per-request context threaded through stages.

This module is the engine's value layer: the :class:`Decision` and
:class:`AnonymitySetScope` enums and the :class:`AnonymizerEvent` audit
record (all re-exported unchanged from :mod:`repro.core.anonymizer`,
their historical home), plus :class:`RequestContext` — the mutable
scratchpad one request carries through the staged pipeline.

Anonymity-set scope — an interpretive choice the sketched Algorithm 1
leaves open (documented in DESIGN.md and measured in benchmark E5):

* ``AnonymitySetScope.PER_LBQID`` (default): the k users are selected once
  per (user, LBQID) — at the first generalized request — and reused for
  *every* later request matching that LBQID until an unlinking reset.
  This is the reading under which Theorem 1 holds for the full matched
  request set, because one fixed set of PHLs stays LT-consistent with all
  forwarded contexts.
* ``AnonymitySetScope.PER_OBSERVATION``: the k users are reselected at
  each sequence observation's first element (the literal reading of
  Algorithm 1's input/output signature).  Contexts are smaller, but the
  users consistent with the *union* of contexts may fall below k.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping

from repro.core.generalization import (
    GeneralizationResult,
    ToleranceConstraint,
)
from repro.core.matching import MatchEvent
from repro.core.policy import PrivacyProfile
from repro.core.requests import Request
from repro.geometry.point import STPoint

if TYPE_CHECKING:
    from repro.engine.session import LBQIDState, UserSession


class Decision(enum.Enum):
    """What the TS did with one request."""

    #: No LBQID element matched; forwarded with the default context.
    FORWARDED = "forwarded"
    #: Matched an LBQID element; forwarded with an Algorithm 1 context
    #: that preserved historical k-anonymity.
    GENERALIZED = "generalized"
    #: Generalization failed; unlinking succeeded before a complete LBQID
    #: was matched.  The request is forwarded under the *old* pseudonym
    #: (unlinking protects "future requests from the previous ones"),
    #: which is then retired: the old pseudonym's request group is frozen
    #: with the LBQID incomplete, so Theorem 1's premise can never hold
    #: for it.
    UNLINKED = "unlinked"
    #: Generalization and unlinking both failed; user notified and the
    #: request forwarded anyway (policy ``RiskAction.FORWARD``).
    AT_RISK_FORWARDED = "at_risk_forwarded"
    #: Generalization and unlinking both failed; user notified and the
    #: request suppressed (policy ``RiskAction.SUPPRESS``).
    SUPPRESSED = "suppressed"
    #: Request fell inside the post-unlinking quiet period — the
    #: Section 6.3 mix-zone mechanic of "temporarily disabling the use
    #: of the service … for the time sufficient to confuse the SP".
    QUIET = "quiet"


class AnonymitySetScope(enum.Enum):
    """When Algorithm 1 reselects the k anonymity users (see module doc)."""

    PER_LBQID = "per_lbqid"
    PER_OBSERVATION = "per_observation"


@dataclass(frozen=True)
class AnonymizerEvent:
    """Audit record of one processed request (TS-side, ground truth).

    ``request`` carries the final outgoing context and pseudonym (for a
    suppressed request: the context that *would* have been sent).
    ``hk_anonymity`` is Algorithm 1's boolean output, ``None`` when no
    generalization ran.  ``lbqid_matched`` flags that the LBQID's
    recurrence formula became satisfied at this request.
    """

    request: Request
    decision: Decision
    forwarded: bool
    lbqid_name: str | None = None
    hk_anonymity: bool | None = None
    lbqid_matched: bool = False
    generalization: GeneralizationResult | None = None
    step: int | None = None
    required_k: int | None = None
    #: Whether this request triggered a pseudonym rotation (successful
    #: unlinking), regardless of whether the request itself was forwarded.
    pseudonym_rotated: bool = False


@dataclass
class RequestContext:
    """Everything one request accumulates while crossing the pipeline.

    The engine seeds the identity fields (request, profile, tolerance,
    session) before the first stage runs; each stage reads what earlier
    stages produced and records its own outcome.  A stage resolves the
    request by *returning* a :class:`Decision` — the engine stores it in
    :attr:`decision` and skips ahead to the terminal stages (audit).
    """

    #: TS-side ground-truth requester identity.
    user_id: int
    #: Exact ``⟨x, y, t⟩`` of the request.
    location: STPoint
    service: str
    #: The outgoing request; stages replace it via ``with_context`` as
    #: the forwarded context firms up.
    request: Request
    profile: PrivacyProfile
    tolerance: ToleranceConstraint
    #: The requester's mutable per-user state (from the session store).
    session: "UserSession"
    data: Mapping[str, object] | None = None

    # -- produced by MonitorMatch ------------------------------------
    #: The (user, LBQID) state whose monitor this request matched.
    state: "LBQIDState | None" = None
    match: MatchEvent | None = None
    #: Index of this request in the matched trace (drives the k′
    #: schedule); ``None`` when no LBQID element matched.
    step: int | None = None
    required_k: int | None = None

    # -- produced by Generalize --------------------------------------
    result: GeneralizationResult | None = None

    # -- produced by Unlink / RiskPolicy -----------------------------
    pseudonym_rotated: bool = False

    # -- resolution ---------------------------------------------------
    decision: Decision | None = None
    forwarded: bool = False
    #: The audit record, set by the terminal Audit stage.
    event: AnonymizerEvent | None = None
    #: Free-form scratch space for experimental stages; the built-in
    #: stages never touch it.
    extras: dict[str, object] = field(default_factory=dict)

    @property
    def lbqid_name(self) -> str | None:
        """Name of the matched LBQID, when one matched."""
        if self.state is None:
            return None
        return self.state.monitor.lbqid.name
