"""Per-user mutable state behind the :class:`SessionStore` protocol.

Before the engine existed, the Trusted Server smeared its per-user
state across private dicts (``_states``, ``_quiet_until``, the
``PseudonymManager``).  This module gathers all of it into one
:class:`UserSession` value — LBQID monitor states with their cached
anonymity sets, the post-unlinking quiet deadline, and the pseudonym
lifecycle — owned by a pluggable store:

* :class:`InMemorySessionStore` — a single dict, the default and the
  byte-compatible successor of the old private-dict layout;
* :class:`ShardedSessionStore` — users partitioned across N independent
  in-memory shards by ``user_id % n_shards``.  Every operation touches
  exactly one shard, which is the structural prerequisite for
  multi-worker deployment: shards share no mutable state, so they can
  later live behind separate locks, processes, or hosts.  Pseudonym
  uniqueness across shards ("pseudonyms are not shared by different
  individuals", Section 5.2) is preserved by giving each shard's issuer
  a distinct prefix.

Decisions never depend on which store backs the engine: the paper's
strategy reads only the requester's own session, so partitioning is
invisible to the Section 6.1 semantics (asserted end-to-end by
``tests/engine/test_session_store.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Protocol, runtime_checkable

from repro.core.matching import LBQIDMonitor
from repro.core.pseudonyms import PseudonymManager


@dataclass
class LBQIDState:
    """Per-(user, LBQID) tracking state."""

    monitor: LBQIDMonitor
    #: Anonymity set selected at the first generalized request
    #: (PER_LBQID scope); None until selected or after a reset.
    anonymity_ids: tuple[int, ...] | None = None
    #: Number of requests generalized for this LBQID since the last
    #: reset; drives the k' schedule.
    steps: int = 0

    def reset(self) -> None:
        """Forget all progress (the Section 6.1 unlinking reset)."""
        self.monitor.reset()
        self.anonymity_ids = None
        self.steps = 0


@dataclass
class UserSession:
    """All mutable Trusted-Server state of one user."""

    user_id: int
    #: One tracking state per registered LBQID, in registration order.
    lbqids: list[LBQIDState] = field(default_factory=list)
    #: End of the post-unlinking service-silence window; ``None`` when
    #: no quiet period is pending (an expired deadline may linger — the
    #: gate compares against the request time).
    quiet_until: float | None = None

    def reset_patterns(self) -> None:
        """Reset every LBQID state after a successful unlinking."""
        for state in self.lbqids:
            state.reset()


@runtime_checkable
class SessionStore(Protocol):
    """Where the engine keeps every user's mutable session state.

    Implementations must create sessions (and pseudonyms) on first
    access and keep each user's state isolated: the engine only ever
    reads and writes the requester's own session, which is what makes
    partitioned implementations safe.
    """

    def session(self, user_id: int) -> UserSession:
        """The user's session, created empty on first access."""
        ...

    def get(self, user_id: int) -> UserSession | None:
        """The user's session, or ``None`` if never seen."""
        ...

    def users(self) -> Iterator[int]:
        """All user ids with a session, in first-seen order per shard."""
        ...

    def pseudonym(self, user_id: int) -> str:
        """The user's active pseudonym, issued on first use."""
        ...

    def rotate_pseudonym(self, user_id: int) -> str:
        """Replace the user's pseudonym (the unlinking action)."""
        ...

    def pseudonym_owner(self, pseudonym: str) -> int | None:
        """Ground-truth owner of a pseudonym (TS/evaluation side)."""
        ...

    def pseudonyms_of(self, user_id: int) -> list[str]:
        """All pseudonyms ever issued to a user, in issue order."""
        ...

    @property
    def pseudonyms_issued(self) -> int:
        """Total pseudonyms issued across all users."""
        ...


class InMemorySessionStore:
    """The default store: one dict of sessions, one pseudonym issuer.

    Byte-compatible with the pre-engine ``TrustedAnonymizer`` layout:
    pseudonyms come from a single :class:`PseudonymManager` with the
    historical ``"p"`` prefix.
    """

    def __init__(self, pseudonym_prefix: str = "p") -> None:
        self._sessions: dict[int, UserSession] = {}
        self.pseudonym_manager = PseudonymManager(prefix=pseudonym_prefix)

    def __len__(self) -> int:
        return len(self._sessions)

    def session(self, user_id: int) -> UserSession:
        session = self._sessions.get(user_id)
        if session is None:
            session = self._sessions[user_id] = UserSession(user_id)
        return session

    def get(self, user_id: int) -> UserSession | None:
        return self._sessions.get(user_id)

    def users(self) -> Iterator[int]:
        return iter(self._sessions)

    def pseudonym(self, user_id: int) -> str:
        return self.pseudonym_manager.current(user_id)

    def rotate_pseudonym(self, user_id: int) -> str:
        return self.pseudonym_manager.rotate(user_id)

    def pseudonym_owner(self, pseudonym: str) -> int | None:
        return self.pseudonym_manager.owner_of(pseudonym)

    def pseudonyms_of(self, user_id: int) -> list[str]:
        return self.pseudonym_manager.pseudonyms_of(user_id)

    @property
    def pseudonyms_issued(self) -> int:
        return self.pseudonym_manager.issued_count


class ShardedSessionStore:
    """Sessions partitioned across N independent in-memory shards.

    Routing is ``user_id % n_shards``; every method resolves the shard
    first and then delegates, so no operation crosses shard boundaries.
    Shard ``i`` issues pseudonyms with prefix ``"p<i>."`` — globally
    unique without any cross-shard coordination.
    """

    def __init__(self, n_shards: int = 4) -> None:
        if n_shards < 1:
            raise ValueError(
                f"n_shards must be at least 1, got {n_shards}"
            )
        self.n_shards = n_shards
        self.shards: tuple[InMemorySessionStore, ...] = tuple(
            InMemorySessionStore(pseudonym_prefix=f"p{index}.")
            for index in range(n_shards)
        )

    def shard_for(self, user_id: int) -> InMemorySessionStore:
        """The shard owning ``user_id``."""
        return self.shards[user_id % self.n_shards]

    def __len__(self) -> int:
        return sum(len(shard) for shard in self.shards)

    def session(self, user_id: int) -> UserSession:
        return self.shard_for(user_id).session(user_id)

    def get(self, user_id: int) -> UserSession | None:
        return self.shard_for(user_id).get(user_id)

    def users(self) -> Iterator[int]:
        for shard in self.shards:
            yield from shard.users()

    def pseudonym(self, user_id: int) -> str:
        return self.shard_for(user_id).pseudonym(user_id)

    def rotate_pseudonym(self, user_id: int) -> str:
        return self.shard_for(user_id).rotate_pseudonym(user_id)

    def pseudonym_owner(self, pseudonym: str) -> int | None:
        for shard in self.shards:
            owner = shard.pseudonym_owner(pseudonym)
            if owner is not None:
                return owner
        return None

    def pseudonyms_of(self, user_id: int) -> list[str]:
        return self.shard_for(user_id).pseudonyms_of(user_id)

    @property
    def pseudonyms_issued(self) -> int:
        return sum(shard.pseudonyms_issued for shard in self.shards)


class SessionPseudonyms:
    """:class:`PseudonymManager`-shaped view over a session store.

    Keeps the historical ``anonymizer.pseudonyms.current(...)`` API
    alive on the facade regardless of which store backs the engine.
    """

    def __init__(self, sessions: SessionStore) -> None:
        self._sessions = sessions

    def current(self, user_id: int) -> str:
        """The user's active pseudonym, created on first use."""
        return self._sessions.pseudonym(user_id)

    def rotate(self, user_id: int) -> str:
        """Replace the user's pseudonym (the unlinking action's step 1)."""
        return self._sessions.rotate_pseudonym(user_id)

    def owner_of(self, pseudonym: str) -> int | None:
        """Ground-truth owner of a pseudonym (TS/evaluation side only)."""
        return self._sessions.pseudonym_owner(pseudonym)

    def pseudonyms_of(self, user_id: int) -> list[str]:
        """All pseudonyms ever issued to a user, in issue order."""
        return self._sessions.pseudonyms_of(user_id)

    @property
    def issued_count(self) -> int:
        """Total pseudonyms issued across all users."""
        return self._sessions.pseudonyms_issued
