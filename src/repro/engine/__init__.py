"""The Trusted Server as a staged request pipeline.

This package decomposes the Section 6.1 preservation strategy — once a
single ``TrustedAnonymizer._process`` monolith — into an explicit
architecture:

* :mod:`repro.engine.context` — the :class:`Decision` vocabulary, the
  :class:`AnonymizerEvent` audit record, and the
  :class:`RequestContext` threaded through the stages;
* :mod:`repro.engine.stages` — the six stages (``QuietGate``,
  ``MonitorMatch``, ``Generalize``, ``Unlink``, ``RiskPolicy``,
  ``Audit``), each a small ``handle(ctx) -> Decision | None`` class;
* :mod:`repro.engine.pipeline` — the :class:`Engine` driving requests
  through a :class:`PipelineBuilder`-assembled stage order, plus the
  :class:`BatchItem` bulk-replay path;
* :mod:`repro.engine.session` — all per-user mutable state behind the
  :class:`SessionStore` protocol (:class:`InMemorySessionStore`,
  :class:`ShardedSessionStore`);
* :mod:`repro.engine.audit` — bounded audit-trail retention
  (``audit="full" | "counts"``).

:class:`~repro.core.anonymizer.TrustedAnonymizer` remains the public
facade; construct an :class:`Engine` directly when you need to swap
stages or session backends.  See DESIGN.md § "Engine architecture".
"""

from repro.engine.audit import AUDIT_MODES, AuditTrail
from repro.engine.context import (
    AnonymitySetScope,
    AnonymizerEvent,
    Decision,
    RequestContext,
)
from repro.engine.pipeline import BatchItem, Engine, PipelineBuilder
from repro.engine.session import (
    InMemorySessionStore,
    LBQIDState,
    SessionPseudonyms,
    SessionStore,
    ShardedSessionStore,
    UserSession,
)
from repro.engine.stages import (
    Audit,
    Generalize,
    MonitorMatch,
    QuietGate,
    RiskPolicy,
    Stage,
    Unlink,
)

__all__ = [
    "AUDIT_MODES",
    "AuditTrail",
    "AnonymitySetScope",
    "AnonymizerEvent",
    "Decision",
    "RequestContext",
    "BatchItem",
    "Engine",
    "PipelineBuilder",
    "SessionStore",
    "UserSession",
    "LBQIDState",
    "SessionPseudonyms",
    "InMemorySessionStore",
    "ShardedSessionStore",
    "Stage",
    "QuietGate",
    "MonitorMatch",
    "Generalize",
    "Unlink",
    "RiskPolicy",
    "Audit",
]
