"""Bounded audit-trail retention for the engine.

The pre-engine anonymizer kept every :class:`AnonymizerEvent` forever —
correct for the paper's fortnight-sized experiments, unbounded for the
ROADMAP's million-user simulations.  :class:`AuditTrail` makes retention
a policy:

* ``"full"`` (default) — identical to the historical behaviour: every
  event is retained, the SP log and decision tallies derive from it;
* ``"counts"`` — per-request events are *not* retained; only the
  O(decisions) tally and the SP-visible request log survive.  Memory is
  then bounded by forwarded traffic (each entry a small frozen
  ``SPRequest``), not by TS-side ground truth.

Either way :meth:`record` returns nothing and never copies: the caller
keeps the event it just built, so online consumers (telemetry, SLO
monitoring) are unaffected by the retention mode.
"""

from __future__ import annotations

from repro.core.requests import Request, SPRequest
from repro.engine.context import AnonymizerEvent, Decision

#: The accepted retention modes.
AUDIT_MODES = ("full", "counts")


class AuditTrail:
    """Decision tallies, the SP log, and (optionally) full events."""

    def __init__(self, mode: str = "full") -> None:
        if mode not in AUDIT_MODES:
            raise ValueError(
                f"audit mode must be one of {AUDIT_MODES}, got {mode!r}"
            )
        self.mode = mode
        #: Retained ground-truth events; stays empty in ``"counts"``.
        self.events: list[AnonymizerEvent] = []
        self._counts: dict[Decision, int] = {
            decision: 0 for decision in Decision
        }
        self._sp_log: list[SPRequest] = []
        self._forwarded: list[Request] = []

    @property
    def retains_events(self) -> bool:
        """Whether per-request events are kept (``"full"`` mode)."""
        return self.mode == "full"

    def record(self, event: AnonymizerEvent) -> None:
        """Account for one processed request."""
        self._counts[event.decision] += 1
        if event.forwarded:
            self._sp_log.append(event.request.sp_view())
        if self.mode == "full":
            self.events.append(event)

    def decision_counts(self) -> dict[Decision, int]:
        """Histogram of decisions over all processed requests."""
        return dict(self._counts)

    def sp_log(self, service: str | None = None) -> list[SPRequest]:
        """The requests a service provider actually received."""
        if service is None:
            return list(self._sp_log)
        return [
            request
            for request in self._sp_log
            if request.service == service
        ]

    def forwarded_requests(self) -> list[Request]:
        """TS-side records of all forwarded requests (evaluation only).

        Requires ``"full"`` retention: the TS-side :class:`Request`
        (exact location, ground-truth user id) is exactly what
        ``"counts"`` mode discards.
        """
        if self.mode != "full":
            raise RuntimeError(
                "forwarded_requests() needs audit='full'; audit="
                f"{self.mode!r} retains only the SP-visible log "
                "(use sp_log())"
            )
        return [
            event.request for event in self.events if event.forwarded
        ]
