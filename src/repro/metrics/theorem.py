"""Theorem 1 as an executable check.

Theorem 1: with the Section 6.1 strategy, Algorithm 1, and an Unlinking
action that always succeeds with likelihood Θ, "any set of requests issued
to an SP by a certain user that matches one of his/her LBQIDs and is link
connected with likelihood Θ will satisfy Historical k-anonymity".

:func:`verify_theorem1` walks a run's audit trail and checks exactly
that statement: for every user and every registered LBQID, the forwarded
requests that were generalized for that LBQID are grouped by pseudonym
(pseudonym equality is the Θ-link-connected unit once unlinking bounds
cross-pseudonym links below Θ); every group whose exact locations match
the LBQID must satisfy Definition 8 against the ground-truth PHL store.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.core.anonymizer import AnonymizerEvent
from repro.core.historical_k import historical_anonymity_set
from repro.core.lbqid import LBQID
from repro.core.matching import request_set_matches
from repro.core.phl import PersonalHistory
from repro.core.requests import Request
from repro.mod.store import TrajectoryStore


@dataclass(frozen=True)
class Theorem1Violation:
    """One (user, pseudonym, LBQID) group that broke Definition 8."""

    user_id: int
    pseudonym: str
    lbqid_name: str
    requests: int
    achieved_k: int


@dataclass
class Theorem1Report:
    """Outcome of a Theorem 1 verification pass."""

    k: int
    groups_checked: int = 0
    groups_matching_lbqid: int = 0
    violations: list[Theorem1Violation] = field(default_factory=list)

    @property
    def holds(self) -> bool:
        """Whether Theorem 1 held on every matched group."""
        return not self.violations


def verify_theorem1(
    events: Sequence[AnonymizerEvent],
    histories: Mapping[int, PersonalHistory],
    lbqids: Mapping[int, Sequence[LBQID]],
    k: int,
) -> Theorem1Report:
    """Check Theorem 1 over a run's audit trail.

    ``lbqids`` maps each user id to the LBQIDs registered for them;
    ``histories`` is the ground-truth PHL store of the run.  Only
    *forwarded* generalized requests enter the check — suppressed ones
    never reached the SP, so they are outside the theorem's statement.

    The mapping is loaded into a columnar
    :class:`~repro.mod.store.TrajectoryStore` once so every group's
    LT-consistency scan runs vectorized; the verdicts are identical to
    the per-observation python scan it replaces.
    """
    report = Theorem1Report(k=k)
    store = TrajectoryStore.from_histories(histories)
    by_name: dict[tuple[int, str], LBQID] = {}
    for user_id, specs in lbqids.items():
        for lbqid in specs:
            by_name[(user_id, lbqid.name)] = lbqid

    groups: dict[tuple[int, str, str], list[Request]] = {}
    for event in events:
        if not event.forwarded or event.lbqid_name is None:
            continue
        key = (
            event.request.user_id,
            event.request.pseudonym,
            event.lbqid_name,
        )
        groups.setdefault(key, []).append(event.request)

    for (user_id, pseudonym, lbqid_name), requests in groups.items():
        lbqid = by_name.get((user_id, lbqid_name))
        if lbqid is None:
            continue
        report.groups_checked += 1
        locations = [request.location for request in requests]
        if not request_set_matches(lbqid, locations):
            continue
        report.groups_matching_lbqid += 1
        contexts = [request.context for request in requests]
        consistent = historical_anonymity_set(
            contexts, histories, exclude_user=user_id, store=store
        )
        achieved = 1 + len(consistent)
        if achieved < k:
            report.violations.append(
                Theorem1Violation(
                    user_id=user_id,
                    pseudonym=pseudonym,
                    lbqid_name=lbqid_name,
                    requests=len(requests),
                    achieved_k=achieved,
                )
            )
    return report
