"""Evaluation metrics for the Section 6.2 trade-offs.

"The most relevant [issue] is the trade-off between quality of service
(i.e., how strict tolerance constraints should be), degree of anonymity
(i.e., choice of k), and frequency of unlinking (i.e., number of possible
interruptions of the service)."  Each leg of that triangle gets a module:

* :mod:`repro.metrics.qos` — generalization cost and service disruption;
* :mod:`repro.metrics.anonymity` — achieved anonymity-set sizes and
  entropy over a request log;
* :mod:`repro.metrics.theorem` — Definition 8 verification of a run's
  audit trail, i.e. Theorem 1 as an executable check.
"""

from repro.metrics.qos import QoSSummary, qos_summary
from repro.metrics.anonymity import (
    AnonymitySummary,
    anonymity_summary,
    historical_k_per_user,
)
from repro.metrics.theorem import Theorem1Report, verify_theorem1
from repro.metrics.unlinking import UnlinkAudit, audit_unlinking

__all__ = [
    "UnlinkAudit",
    "audit_unlinking",
    "QoSSummary",
    "qos_summary",
    "AnonymitySummary",
    "anonymity_summary",
    "historical_k_per_user",
    "Theorem1Report",
    "verify_theorem1",
]
