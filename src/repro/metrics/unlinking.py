"""Empirical unlinking efficacy.

Section 6.3 defines Unlinking by its outcome: after it, requests under
the old and new pseudonyms link with likelihood below Θ.  This module
*measures* the likelihood an actual adversary achieves, rather than
trusting the provider's declared Θ: run the multi-target tracker over
the SP-visible stream and count, for every pseudonym rotation the TS
performed, whether the tracker stitched the old and new pseudonyms onto
one track.

The fraction of rotations re-linked is the achieved Θ̂.  With a
continuous trajectory and no service silence, movement continuity
bridges the rotation almost every time — the paper's motivation for
mix-zones ("temporarily disabling the use of the service … for the time
sufficient to confuse the SP"), which the anonymizer's ``quiet_period``
implements and benchmark E16 sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.attack.tracker import TrajectoryTracker
from repro.core.anonymizer import AnonymizerEvent
from repro.core.phl import PersonalHistory
from repro.mod.interpolation import position_at


@dataclass(frozen=True)
class RotationRecord:
    """One audited pseudonym rotation."""

    user_id: int
    t: float
    relinked: bool


@dataclass(frozen=True)
class UnlinkAudit:
    """Outcome of auditing a run's rotations against a tracker."""

    rotations: int
    relinked: int
    records: tuple[RotationRecord, ...] = ()

    @property
    def relink_rate(self) -> float:
        """The achieved Θ̂: fraction of rotations the attacker bridged."""
        if self.rotations == 0:
            return 0.0
        return self.relinked / self.rotations


def audit_unlinking(
    events: Sequence[AnonymizerEvent],
    max_speed: float = 15.0,
    track_timeout: float = 3600.0,
) -> UnlinkAudit:
    """Measure how many pseudonym rotations the tracker re-links.

    The tracker (with same-pseudonym following enabled, as any real
    adversary would) runs over the forwarded stream; a rotation counts
    as *re-linked* when some request under the retiring pseudonym and
    some request under its successor share a track.
    """
    forwarded = [e.request for e in events if e.forwarded]
    tracker = TrajectoryTracker(
        max_speed=max_speed, track_timeout=track_timeout
    )
    tracker.run([request.sp_view() for request in forwarded])

    # Tracks touched by each pseudonym.
    tracks_of: dict[str, set[int]] = {}
    for request in forwarded:
        track = tracker.track_of(request.msgid)
        if track is not None:
            tracks_of.setdefault(request.pseudonym, set()).add(track)

    # Rotation pairs: per user, consecutive distinct pseudonyms in
    # event order (ground truth the auditor — the TS itself — holds).
    last_pseudonym: dict[int, str] = {}
    records: list[RotationRecord] = []
    for event in events:
        user = event.request.user_id
        pseudonym = event.request.pseudonym
        previous = last_pseudonym.get(user)
        if previous is not None and previous != pseudonym:
            old_tracks = tracks_of.get(previous, set())
            new_tracks = tracks_of.get(pseudonym, set())
            records.append(
                RotationRecord(
                    user_id=user,
                    t=event.request.t,
                    relinked=bool(old_tracks & new_tracks),
                )
            )
        last_pseudonym[user] = pseudonym
    return UnlinkAudit(
        rotations=len(records),
        relinked=sum(1 for r in records if r.relinked),
        records=tuple(records),
    )


def split_by_motion(
    audit: UnlinkAudit,
    histories: Mapping[int, PersonalHistory],
    speed_threshold: float = 0.5,
    half_window: float = 240.0,
) -> dict[bool, UnlinkAudit]:
    """Partition an audit's rotations by the user's motion state.

    A rotation counts as *moving* when the user's mean speed over
    ``±half_window`` seconds around it exceeds ``speed_threshold`` m/s.
    Returns ``{True: moving-audit, False: stationary-audit}``.  The
    distinction matters because service silence only unlinks users who
    *emerge somewhere else*; a dwell place bridges any silence — the
    place itself is the identifier, which is the LBQID thesis.
    """
    buckets: dict[bool, list[RotationRecord]] = {True: [], False: []}
    for record in audit.records:
        history = histories.get(record.user_id)
        moving = False
        if history is not None:
            before = position_at(history, record.t - half_window)
            after = position_at(history, record.t + half_window)
            if before is not None and after is not None:
                speed = before.distance_to(after) / (2 * half_window)
                moving = speed > speed_threshold
        buckets[moving].append(record)
    return {
        moving: UnlinkAudit(
            rotations=len(records),
            relinked=sum(1 for r in records if r.relinked),
            records=tuple(records),
        )
        for moving, records in buckets.items()
    }
