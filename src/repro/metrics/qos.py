"""Quality-of-service metrics.

Generalization trades service quality for anonymity: the coarser the
``⟨Area, TimeInterval⟩`` an SP receives, the less useful its answer.  We
summarize a run by the spatial and temporal extents of forwarded
contexts and by the *disruption rate* — the fraction of requests the
strategy could not serve safely (suppressed) plus, reported separately,
the unlinking frequency ("number of possible interruptions of the
service", Section 6.2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.core.anonymizer import AnonymizerEvent, Decision


@dataclass(frozen=True)
class QoSSummary:
    """Scalar quality-of-service summary of one run."""

    requests: int
    mean_area_m2: float
    mean_width_m: float
    mean_duration_s: float
    p95_width_m: float
    suppression_rate: float
    unlink_rate: float
    at_risk_rate: float

    def row(self) -> list[float]:
        """The summary as a benchmark-table row."""
        return [
            self.requests,
            self.mean_area_m2,
            self.mean_width_m,
            self.mean_duration_s,
            self.p95_width_m,
            self.suppression_rate,
            self.unlink_rate,
            self.at_risk_rate,
        ]


def _percentile(values: list[float], fraction: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(
        len(ordered) - 1, max(0, math.ceil(fraction * len(ordered)) - 1)
    )
    return ordered[index]


def qos_summary(
    events: Sequence[AnonymizerEvent], generalized_only: bool = True
) -> QoSSummary:
    """Summarize context sizes and disruption over an audit trail.

    With ``generalized_only`` (default) the size statistics cover only
    requests that went through Algorithm 1 — the interesting population;
    rates are always over all events.
    """
    sized = [
        e
        for e in events
        if (e.lbqid_name is not None or not generalized_only)
        and e.forwarded
    ]
    widths = [
        max(e.request.context.rect.width, e.request.context.rect.height)
        for e in sized
    ]
    areas = [e.request.context.rect.area for e in sized]
    durations = [e.request.context.interval.duration for e in sized]
    total = len(events)

    def rate(decision: Decision) -> float:
        if total == 0:
            return 0.0
        return sum(1 for e in events if e.decision is decision) / total

    def mean(values: list[float]) -> float:
        return sum(values) / len(values) if values else 0.0

    return QoSSummary(
        requests=total,
        mean_area_m2=mean(areas),
        mean_width_m=mean(widths),
        mean_duration_s=mean(durations),
        p95_width_m=_percentile(widths, 0.95),
        suppression_rate=rate(Decision.SUPPRESSED),
        unlink_rate=rate(Decision.UNLINKED),
        at_risk_rate=rate(Decision.AT_RISK_FORWARDED)
        + rate(Decision.SUPPRESSED),
    )
