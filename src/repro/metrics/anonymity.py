"""Achieved-anonymity metrics.

Two views:

* per-request anonymity sets (the [11]-style measure): how many users'
  PHLs intersect each forwarded context;
* per-user historical anonymity (the paper's Definition 8 measure): how
  many *other* users remain LT-consistent with the whole set of contexts
  an SP can attribute to one pseudonym.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.core.anonymizer import AnonymizerEvent
from repro.core.historical_k import (
    anonymity_entropy,
    historical_anonymity_set,
    request_anonymity_set,
)
from repro.core.phl import PersonalHistory
from repro.mod.store import TrajectoryStore


@dataclass(frozen=True)
class AnonymitySummary:
    """Scalar anonymity summary over a set of forwarded requests."""

    requests: int
    mean_set_size: float
    min_set_size: int
    entropy_bits: float
    fraction_below_k: float

    def row(self) -> list[float]:
        return [
            self.requests,
            self.mean_set_size,
            self.min_set_size,
            self.entropy_bits,
            self.fraction_below_k,
        ]


def anonymity_summary(
    events: Sequence[AnonymizerEvent],
    histories: Mapping[int, PersonalHistory],
    k: int,
    generalized_only: bool = True,
) -> AnonymitySummary:
    """Per-request anonymity sets of forwarded contexts.

    ``fraction_below_k`` is the share of requests whose single-context
    anonymity set has fewer than ``k`` members — the per-request failure
    measure the [11] baseline optimizes directly.
    """
    contexts = [
        e.request.context
        for e in events
        if e.forwarded and (e.lbqid_name is not None or not generalized_only)
    ]
    store = TrajectoryStore.from_histories(histories) if contexts else None
    sizes = [
        len(request_anonymity_set(context, histories, store=store))
        for context in contexts
    ]
    if not sizes:
        return AnonymitySummary(0, 0.0, 0, 0.0, 0.0)
    return AnonymitySummary(
        requests=len(sizes),
        mean_set_size=sum(sizes) / len(sizes),
        min_set_size=min(sizes),
        entropy_bits=anonymity_entropy(sizes),
        fraction_below_k=sum(1 for s in sizes if s < k) / len(sizes),
    )


def historical_k_per_user(
    events: Sequence[AnonymizerEvent],
    histories: Mapping[int, PersonalHistory],
    hk_only: bool = False,
    group_by_lbqid: bool = True,
) -> dict[int, int]:
    """Achieved historical anonymity per user, worst case over traces.

    Requests are grouped by (pseudonym, LBQID) — the scope of the
    paper's guarantee: Algorithm 1 keeps one anonymity set per LBQID, so
    Definition 8 is promised for the requests matching one LBQID under
    one pseudonym.  The reported value per user is the *minimum* over
    their groups of ``1 +`` the number of other users LT-consistent with
    the group's contexts.

    With ``group_by_lbqid=False`` all of a pseudonym's generalized
    requests are pooled regardless of LBQID — the stronger adversarial
    reading (the SP links by pseudonym alone), under which a user
    monitored for several LBQIDs may score below k because different
    LBQIDs use different anonymity sets.

    With ``hk_only`` only contexts Algorithm 1 certified (hk = True) are
    included; the default also counts forwarded-but-failed contexts (the
    final request of an unlinked trace), giving the warts-and-all number.
    """
    groups: dict[tuple, list] = {}
    for event in events:
        if not event.forwarded or event.lbqid_name is None:
            continue
        if hk_only and not event.hk_anonymity:
            continue
        key: tuple = (event.request.user_id, event.request.pseudonym)
        if group_by_lbqid:
            key = key + (event.lbqid_name,)
        groups.setdefault(key, []).append(event.request.context)
    store = TrajectoryStore.from_histories(histories) if groups else None
    worst: dict[int, int] = {}
    for key, contexts in groups.items():
        user_id = key[0]
        consistent = historical_anonymity_set(
            contexts, histories, exclude_user=user_id, store=store
        )
        achieved = 1 + len(consistent)
        if user_id not in worst or achieved < worst[user_id]:
            worst[user_id] = achieved
    return worst
