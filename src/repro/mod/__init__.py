"""Moving-object database: the Trusted Server's location store.

Section 3 gives the TS "the usual functionalities of a location server
(i.e., a moving object database storing precise data for all of its users
and the capability to efficiently perform spatio-temporal queries)".  This
subpackage provides it:

* :class:`~repro.mod.store.TrajectoryStore` — all users' PHLs, with the
  queries Algorithm 1 needs: per-user closest point and k-nearest users
  around a spatio-temporal point;
* :class:`~repro.mod.grid_index.GridIndex` — a uniform spatio-temporal
  grid accelerating those queries (the paper notes "optimizations may be
  inspired by the work on indexing moving objects"; benchmark E9 measures
  the speed-up over the paper's brute-force O(k·n) bound);
* :mod:`repro.mod.interpolation` — linear position interpolation between
  samples;
* :mod:`repro.mod.queries` — spatio-temporal range queries over the store;
* :mod:`repro.mod.columnar` — the structure-of-arrays numpy backend
  behind ``TrajectoryStore(backend="numpy")``, decision-equivalent to
  the python scans but answering the hot queries with batched array
  ops (benchmark E9's ``backend`` dimension measures the gap).
"""

from repro.mod.columnar import (
    BACKEND_ENV,
    BACKENDS,
    ColumnarHistory,
    ColumnarView,
    resolve_backend,
)
from repro.mod.grid_index import GridIndex
from repro.mod.interpolation import position_at
from repro.mod.queries import count_users_in_box, users_in_box
from repro.mod.store import TrajectoryStore

__all__ = [
    "BACKEND_ENV",
    "BACKENDS",
    "ColumnarHistory",
    "ColumnarView",
    "GridIndex",
    "TrajectoryStore",
    "count_users_in_box",
    "position_at",
    "resolve_backend",
    "users_in_box",
]
