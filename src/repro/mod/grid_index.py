"""Uniform spatio-temporal grid index over PHL samples.

Points are indexed in a *scaled* 3D space where the temporal axis has been
multiplied by the store's time scale (meters per second), so a single cell
edge length applies to all three axes and nearest-neighbour ring searches
have a sound distance lower bound: every point outside Chebyshev cell ring
``r`` is at Euclidean distance greater than ``(r − 1) · cell_size`` from
any point in the center cell's neighbourhood.
"""

from __future__ import annotations

import math
import time
from collections import defaultdict

from repro.geometry.distance import DEFAULT_TIME_SCALE, st_distance
from repro.geometry.point import STPoint
from repro.geometry.region import STBox
from repro.obs.config import Telemetry, TelemetryConfig, resolve_telemetry

Cell = tuple[int, int, int]


class GridIndex:
    """Uniform grid over ``(x, y, t·time_scale)`` holding (user, point).

    ``cell_size`` is in meters (and applies to the scaled temporal axis).
    The index is append-only, matching how a location server ingests
    updates.  ``telemetry`` records insert/query counts and ring-search
    latencies under ``grid.*``.
    """

    def __init__(
        self,
        cell_size: float = 500.0,
        time_scale: float = DEFAULT_TIME_SCALE,
        telemetry: "Telemetry | TelemetryConfig | None" = None,
    ) -> None:
        if cell_size <= 0:
            raise ValueError(f"cell_size must be positive, got {cell_size}")
        if time_scale <= 0:
            raise ValueError(f"time_scale must be positive, got {time_scale}")
        self.cell_size = cell_size
        self.time_scale = time_scale
        self.telemetry = resolve_telemetry(telemetry)
        self._cells: dict[Cell, list[tuple[int, STPoint]]] = defaultdict(list)
        self._count = 0

    def __len__(self) -> int:
        return self._count

    def _cell_of(self, p: STPoint) -> Cell:
        c = self.cell_size
        return (
            math.floor(p.x / c),
            math.floor(p.y / c),
            math.floor(p.t * self.time_scale / c),
        )

    def insert(self, user_id: int, point: STPoint) -> None:
        """Index one PHL sample."""
        self._cells[self._cell_of(point)].append((user_id, point))
        self._count += 1
        self.telemetry.count("grid.inserts")

    def _ring_cells(self, center: Cell, radius: int) -> list[Cell]:
        """Cells at exactly Chebyshev distance ``radius`` from ``center``."""
        cx, cy, ct = center
        if radius == 0:
            return [center]
        cells = []
        span = range(-radius, radius + 1)
        for dx in span:
            for dy in span:
                for dt in span:
                    if max(abs(dx), abs(dy), abs(dt)) == radius:
                        cells.append((cx + dx, cy + dy, ct + dt))
        return cells

    def nearest_users(
        self,
        target: STPoint,
        count: int,
        exclude: frozenset[int] | set[int] = frozenset(),
        max_radius_cells: int = 64,
    ) -> list[tuple[int, STPoint, float]]:
        """The ``count`` users whose nearest indexed point is closest.

        Returns ``(user_id, closest_point, distance)`` sorted by distance.
        This is the accelerated form of Algorithm 1 line 5: the search
        expands cell rings outward from the target and stops as soon as
        the ring's distance lower bound exceeds the current ``count``-th
        best per-user distance.  Fewer than ``count`` tuples are returned
        when the store does not contain enough distinct users within
        ``max_radius_cells`` rings.
        """
        if not self.telemetry.enabled:
            return self._nearest_users_impl(
                target, count, exclude, max_radius_cells
            )
        start = time.perf_counter()
        result = self._nearest_users_impl(
            target, count, exclude, max_radius_cells
        )
        self._record_query("nearest_users", start)
        return result

    def _record_query(self, query: str, start: float) -> None:
        elapsed_ms = (time.perf_counter() - start) * 1000.0
        self.telemetry.count("grid.queries", query=query)
        self.telemetry.observe("grid.query_ms", elapsed_ms, query=query)

    def _nearest_users_impl(
        self,
        target: STPoint,
        count: int,
        exclude: frozenset[int] | set[int] = frozenset(),
        max_radius_cells: int = 64,
    ) -> list[tuple[int, STPoint, float]]:
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        if count == 0:
            return []
        center = self._cell_of(target)
        best: dict[int, tuple[float, STPoint]] = {}
        seen_points = 0

        def visit(bucket: list[tuple[int, STPoint]]) -> None:
            nonlocal seen_points
            seen_points += len(bucket)
            for user_id, point in bucket:
                if user_id in exclude:
                    continue
                distance = st_distance(point, target, self.time_scale)
                known = best.get(user_id)
                if known is None or distance < known[0]:
                    best[user_id] = (distance, point)

        def done_at(radius: int) -> bool:
            if len(best) < count:
                return False
            kth = sorted(d for d, _ in best.values())[count - 1]
            return (radius - 1) * self.cell_size > kth

        for radius in range(max_radius_cells + 1):
            if done_at(radius) or seen_points >= self._count:
                break
            ring_size = 1 if radius == 0 else 24 * radius * radius + 2
            if ring_size > len(self._cells):
                # The ring would enumerate more (mostly empty) cells
                # than the index holds — e.g. a query far from all
                # data.  Switch to scanning the occupied cells, bucketed
                # by their actual ring distance, with the same early
                # stop.
                remaining: dict[int, list[Cell]] = {}
                for cell in self._cells:
                    distance = max(
                        abs(cell[0] - center[0]),
                        abs(cell[1] - center[1]),
                        abs(cell[2] - center[2]),
                    )
                    if distance >= radius:
                        remaining.setdefault(distance, []).append(cell)
                for distance in sorted(remaining):
                    if done_at(distance):
                        break
                    for cell in remaining[distance]:
                        visit(self._cells[cell])
                break
            for cell in self._ring_cells(center, radius):
                bucket = self._cells.get(cell)
                if bucket:
                    visit(bucket)
        ranked = sorted(
            (distance, user_id, point)
            for user_id, (distance, point) in best.items()
        )
        return [
            (user_id, point, distance)
            for distance, user_id, point in ranked[:count]
        ]

    def _cells_covering(self, box: STBox) -> list[Cell]:
        c = self.cell_size
        x_lo = math.floor(box.rect.x_min / c)
        x_hi = math.floor(box.rect.x_max / c)
        y_lo = math.floor(box.rect.y_min / c)
        y_hi = math.floor(box.rect.y_max / c)
        t_lo = math.floor(box.interval.start * self.time_scale / c)
        t_hi = math.floor(box.interval.end * self.time_scale / c)
        return [
            (ix, iy, it)
            for ix in range(x_lo, x_hi + 1)
            for iy in range(y_lo, y_hi + 1)
            for it in range(t_lo, t_hi + 1)
        ]

    def users_in_box(self, box: STBox) -> set[int]:
        """Distinct users with at least one indexed sample inside ``box``."""
        if not self.telemetry.enabled:
            return self._users_in_box_impl(box)
        start = time.perf_counter()
        result = self._users_in_box_impl(box)
        self._record_query("users_in_box", start)
        return result

    def _users_in_box_impl(self, box: STBox) -> set[int]:
        users: set[int] = set()
        for cell in self._cells_covering(box):
            for user_id, point in self._cells.get(cell, ()):
                if user_id not in users and box.contains(point):
                    users.add(user_id)
        return users

    def points_in_box(self, box: STBox) -> list[tuple[int, STPoint]]:
        """All indexed ``(user, sample)`` pairs inside ``box``."""
        return [
            (user_id, point)
            for cell in self._cells_covering(box)
            for user_id, point in self._cells.get(cell, ())
            if box.contains(point)
        ]
