"""Linear interpolation of a user's position between PHL samples.

Moving-object databases conventionally treat a trajectory as the piecewise
linear curve through its samples; the tracking attacker and the mix-zone
analysis both need positions at arbitrary instants.
"""

from __future__ import annotations

import bisect

from repro.core.phl import PersonalHistory
from repro.geometry.point import Point, STPoint


def position_at(history: PersonalHistory, t: float) -> Point | None:
    """Interpolated position of the user at instant ``t``.

    Returns ``None`` when ``t`` falls outside the history's time span or
    the history is empty.  Between two samples the position is linear in
    time; at a sample it is the sample itself (coincident-timestamp
    samples resolve to the later one, consistent with ``bisect_right``).
    """
    points = history.points
    if not points:
        return None
    times = [p.t for p in points]
    if t < times[0] or t > times[-1]:
        return None
    index = bisect.bisect_right(times, t)
    if index == 0:
        return points[0].point
    if index == len(points):
        return points[-1].point
    before = points[index - 1]
    after = points[index]
    if after.t == before.t:
        return after.point
    alpha = (t - before.t) / (after.t - before.t)
    return Point(
        before.x + alpha * (after.x - before.x),
        before.y + alpha * (after.y - before.y),
    )


def sampled_positions(
    history: PersonalHistory, t_start: float, t_end: float, step: float
) -> list[STPoint]:
    """Resample a trajectory at a fixed period over ``[t_start, t_end]``.

    Instants outside the history's span are skipped, so the result may be
    shorter than the requested grid.
    """
    if step <= 0:
        raise ValueError(f"step must be positive, got {step}")
    samples = []
    t = t_start
    while t <= t_end:
        position = position_at(history, t)
        if position is not None:
            samples.append(STPoint(position.x, position.y, t))
        t += step
    return samples
