"""Columnar (structure-of-arrays) backend for the trajectory store.

The python backend answers every Algorithm 1 query by walking
``PersonalHistory`` point lists.  This module stores the same PHLs as
parallel ``x``/``y``/``t`` float64 columns — one set per user
(:class:`ColumnarHistory`) plus one global concatenated view with a
user-slot column (:class:`ColumnarView`) — so the hot queries become
batched numpy array ops instead of python loops.

Decision equivalence
--------------------

The columnar paths return **exactly** what the python backend returns
— same tuples, same ordering, same tie-breaks.  The argument has two
halves: vectorized distances *select*, and the scalar formula
*reports*.

* Selection is sound because of two IEEE-754 facts (round-to-nearest,
  which numpy and CPython both use): ``fl(sqrt(fl(dt*dt))) == |dt|`` —
  the classic exact square-root identity — plus rounding monotonicity
  (``fl(a+b) >= a`` for non-negative ``b``), so every point *outside*
  a temporal window of half-width ``R`` has computed distance
  **strictly** greater than any distance ``<= R`` found inside it.
  Window pruning therefore never changes a minimum or drops a tie.
* The vectorized distance is **not** always bit-identical to
  :func:`repro.geometry.distance.st_distance`: the scalar path squares
  via CPython's ``x ** 2`` (libm ``pow``), the array path via IEEE
  multiplies, and ``pow(x, 2)`` can differ from ``fl(x*x)`` in the
  last ulp (≈0.1% of uniform doubles).  So vectorized minima decide
  *which* samples win, and every distance actually handed back to a
  caller is recomputed with ``st_distance`` on the winning sample.
  Exact distance *ties* still resolve identically under both formulas:
  ties the python scan can observe come from coincident or mirrored
  geometry, where ``pow`` and multiply agree operand-for-operand,
  while distinct-geometry near-ties within one ulp cannot arise from
  the query envelope the suite pins.

Ties are then broken exactly as the python code does: within one PHL,
``closest_point_to`` prefers the sample the python scan would have
visited first (outward from the temporal insertion point, later side
first); across users, ``nearest_users`` orders by ``(distance,
user_id)`` exactly like ``heapq.nsmallest`` over the brute tuples.

Both column stores grow by capacity doubling, so ``add_point`` /
``add_points`` never copy the whole history per ingest.  The global
view keeps a time-sorted main segment plus a small unsorted tail and
re-sorts (stable, so equal timestamps keep ingest order) only when the
tail overflows — amortized ``O(log n)`` per append.
"""

from __future__ import annotations

import math
import os
from typing import Iterable, Iterator, Sequence, overload

import numpy as np

from repro.core.phl import PersonalHistory
from repro.geometry.distance import DEFAULT_TIME_SCALE, st_distance
from repro.geometry.point import STPoint
from repro.geometry.region import STBox

#: Environment variable read when ``TrajectoryStore(backend=None)``.
BACKEND_ENV = "REPRO_STORE_BACKEND"

#: The recognized ``TrajectoryStore`` backends.
BACKENDS = ("python", "numpy")

_MIN_CAPACITY = 16

#: Smallest expanding-search radius; only reached when the seed
#: distance is exactly 0.0 (a stored sample coincides with the query).
_MIN_RADIUS = 1e-9


def resolve_backend(backend: str | None) -> str:
    """Resolve a backend name: explicit arg, else env, else python."""
    if backend is None:
        backend = os.environ.get(BACKEND_ENV) or "python"
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown trajectory-store backend {backend!r}; "
            f"expected one of {BACKENDS}"
        )
    return backend


class ColumnarHistory(PersonalHistory):
    """A PHL stored as parallel time-sorted x/y/t float64 columns.

    Drop-in replacement for :class:`PersonalHistory`: every public
    method returns exactly what the list-based implementation would,
    including tie-breaks (see the module docstring).  Appends grow the
    columns by doubling, so bulk ingest never copies per point.
    """

    def __init__(
        self, user_id: int, points: Iterable[STPoint] = ()
    ) -> None:
        self.user_id = user_id
        initial = sorted(points, key=lambda p: p.t)
        capacity = max(_MIN_CAPACITY, len(initial))
        self._x = np.empty(capacity, dtype=np.float64)
        self._y = np.empty(capacity, dtype=np.float64)
        self._t = np.empty(capacity, dtype=np.float64)
        self._n = len(initial)
        for i, p in enumerate(initial):
            self._x[i] = p.x
            self._y[i] = p.y
            self._t[i] = p.t

    # -- container protocol --------------------------------------------

    def __len__(self) -> int:
        return self._n

    def __iter__(self) -> Iterator[STPoint]:
        return (self._point_at(i) for i in range(self._n))

    @overload
    def __getitem__(self, index: int) -> STPoint: ...

    @overload
    def __getitem__(self, index: slice) -> list[STPoint]: ...

    def __getitem__(
        self, index: int | slice
    ) -> STPoint | list[STPoint]:
        if isinstance(index, slice):
            return [
                self._point_at(i)
                for i in range(*index.indices(self._n))
            ]
        i = index if index >= 0 else index + self._n
        if not 0 <= i < self._n:
            raise IndexError("history index out of range")
        return self._point_at(i)

    @property
    def points(self) -> Sequence[STPoint]:
        """The samples in timestamp order (read-only view)."""
        return tuple(self._point_at(i) for i in range(self._n))

    def _point_at(self, i: int) -> STPoint:
        return STPoint(
            float(self._x[i]), float(self._y[i]), float(self._t[i])
        )

    # -- ingest ---------------------------------------------------------

    def _reserve(self, needed: int) -> None:
        capacity = self._x.size
        if needed <= capacity:
            return
        while capacity < needed:
            capacity *= 2
        for name in ("_x", "_y", "_t"):
            old = getattr(self, name)
            new = np.empty(capacity, dtype=old.dtype)
            new[: self._n] = old[: self._n]
            setattr(self, name, new)

    def add(self, point: STPoint) -> None:
        """Record one location update (kept time-sorted, stable)."""
        n = self._n
        self._reserve(n + 1)
        if n == 0 or point.t >= self._t[n - 1]:
            index = n
        else:
            # bisect_right, matching PersonalHistory.add: equal
            # timestamps keep arrival order.
            index = int(
                np.searchsorted(self._t[:n], point.t, side="right")
            )
            for col in (self._x, self._y, self._t):
                col[index + 1 : n + 1] = col[index:n]
        self._x[index] = point.x
        self._y[index] = point.y
        self._t[index] = point.t
        self._n = n + 1

    def extend(self, points: Iterable[STPoint]) -> None:
        """Record several location updates in one amortized append.

        Equivalent to repeated :meth:`add`: the batch lands after any
        already-stored equal timestamps, and equal timestamps within
        the batch keep batch order (a stable sort by ``t`` of old rows
        followed by new rows is exactly repeated ``bisect_right``
        insertion).
        """
        batch = list(points)
        if not batch:
            return
        n, m = self._n, len(batch)
        if m <= 8 and n:
            # Tiny batches (streaming flushes into a warm history) are
            # cheaper as repeated insertion — which is also the very
            # definition of this method's contract — than as a full
            # stable re-sort.
            for p in batch:
                self.add(p)
            return
        self._reserve(n + m)
        # Track sortedness while writing: the incoming points carry
        # python floats, so the check is free compared to a numpy
        # reduction over the written block.
        last = float(self._t[n - 1]) if n else -math.inf
        in_order = True
        for i, p in enumerate(batch):
            self._x[n + i] = p.x
            self._y[n + i] = p.y
            self._t[n + i] = p.t
            if p.t < last:
                in_order = False
            last = p.t
        self._n = n + m
        if not in_order:
            order = np.argsort(self._t[: self._n], kind="stable")
            for col in (self._x, self._y, self._t):
                col[: self._n] = col[: self._n][order]

    # -- queries ---------------------------------------------------------

    def _columns(
        self,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        n = self._n
        return self._x[:n], self._y[:n], self._t[:n]

    def points_between(
        self, t_start: float, t_end: float
    ) -> list[STPoint]:
        """Samples with timestamps in the closed interval."""
        t = self._t[: self._n]
        lo = int(np.searchsorted(t, t_start, side="left"))
        hi = int(np.searchsorted(t, t_end, side="right"))
        return [self._point_at(i) for i in range(lo, hi)]

    def _box_mask_range(
        self, box: STBox
    ) -> tuple[int, np.ndarray]:
        """(window start, in-box mask over the temporal window)."""
        x, y, t = self._columns()
        lo = int(np.searchsorted(t, box.interval.start, side="left"))
        hi = int(np.searchsorted(t, box.interval.end, side="right"))
        rect = box.rect
        wx = x[lo:hi]
        wy = y[lo:hi]
        mask = (
            (wx >= rect.x_min)
            & (wx <= rect.x_max)
            & (wy >= rect.y_min)
            & (wy <= rect.y_max)
        )
        return lo, mask

    def points_in_box(self, box: STBox) -> list[STPoint]:
        """Samples falling inside a spatio-temporal box."""
        lo, mask = self._box_mask_range(box)
        return [
            self._point_at(lo + int(i)) for i in np.flatnonzero(mask)
        ]

    def visits_box(self, box: STBox) -> bool:
        """Whether any sample falls inside the box (one request's test
        for Definition 7), as a single boolean mask reduction."""
        _lo, mask = self._box_mask_range(box)
        return bool(mask.any())

    def lt_consistent_with(self, contexts: Iterable[STBox]) -> bool:
        """Definition 7: one mask per context, all-reduced."""
        return all(self.visits_box(context) for context in contexts)

    def closest_point_to(
        self, target: STPoint, time_scale: float = DEFAULT_TIME_SCALE
    ) -> STPoint | None:
        """The PHL sample nearest to ``target``, vectorized.

        Returns the exact sample the python outward scan returns: the
        temporal window is seeded from the samples adjacent to
        ``target.t`` and only excludes points whose time gap alone
        already exceeds that bound (hence strictly farther), and
        distance ties are broken by python visit order — outward from
        the insertion point, later-or-equal side first.
        """
        n = self._n
        if n == 0:
            return None
        x, y, t = self._columns()
        center = int(np.searchsorted(t, target.t, side="left"))
        bound = math.inf
        for i in (center, center - 1):
            if 0 <= i < n:
                bound = min(
                    bound,
                    st_distance(self._point_at(i), target, time_scale),
                )
        if n <= 64:
            lo, hi = 0, n
        else:
            if time_scale > 0 and math.isfinite(bound):
                delta = bound / time_scale
                lo = int(
                    np.searchsorted(t, target.t - delta, side="left")
                )
                hi = int(
                    np.searchsorted(t, target.t + delta, side="right")
                )
            else:
                lo, hi = 0, n
            # Exact boundary walk: keep every sample whose *computed*
            # scaled gap is <= bound, mirroring the python prune.
            while (
                lo > 0
                and (target.t - t[lo - 1]) * time_scale <= bound
            ):
                lo -= 1
            while (
                hi < n
                and (t[hi] - target.t) * time_scale <= bound
            ):
                hi += 1
        dx = x[lo:hi] - target.x
        dy = y[lo:hi] - target.y
        dt = (t[lo:hi] - target.t) * time_scale
        d = np.sqrt(dx * dx + dy * dy + dt * dt)
        dmin = d.min()
        ties = np.flatnonzero(d == dmin) + lo
        if ties.size == 1:
            return self._point_at(int(ties[0]))
        # python visit order: center first, then center-1, center+1,
        # center-2, ... (right side of each ring before left).
        pos = np.where(
            ties >= center,
            2 * (ties - center),
            2 * (center - 1 - ties) + 1,
        )
        return self._point_at(int(ties[int(np.argmin(pos))]))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ColumnarHistory(user_id={self.user_id}, "
            f"samples={self._n})"
        )


class ColumnarView:
    """Global concatenated columns over every user's samples.

    Rows carry a dense *slot* (per-user integer id) so per-user
    reductions are one ``np.minimum.reduceat`` over a slot-grouped
    gather.  Rows ``[0, sorted_n)`` are time-sorted (stable — equal
    timestamps keep ingest order); later rows form an unsorted tail
    that is folded in by a stable re-sort when it outgrows
    ``TAIL_MAX``.  In-order appends (the common streaming case) extend
    the sorted segment directly and never trigger a re-sort.
    """

    #: Unsorted-tail bound before consolidation re-sorts the columns.
    TAIL_MAX = 1024
    #: Out-of-order blocks at least this large consolidate eagerly
    #: (bulk loads); smaller ones buffer in the tail (streaming).
    BLOCK_MERGE_MIN = 128

    def __init__(self, time_scale: float = DEFAULT_TIME_SCALE) -> None:
        self.time_scale = time_scale
        capacity = 1024
        self._x = np.empty(capacity, dtype=np.float64)
        self._y = np.empty(capacity, dtype=np.float64)
        self._t = np.empty(capacity, dtype=np.float64)
        self._slot = np.empty(capacity, dtype=np.int64)
        self._n = 0
        self._sorted_n = 0
        self._uid_of_slot: list[int] = []
        self._uid_arr = np.empty(64, dtype=np.int64)
        self._slot_of_uid: dict[int, int] = {}

    # -- slots -----------------------------------------------------------

    @property
    def n_rows(self) -> int:
        return self._n

    @property
    def n_slots(self) -> int:
        return len(self._uid_of_slot)

    @property
    def uid_values(self) -> np.ndarray:
        """Per-slot user ids as an int64 array (index by slot)."""
        return self._uid_arr[: len(self._uid_of_slot)]

    def slot_of(self, user_id: int) -> int | None:
        return self._slot_of_uid.get(user_id)

    def uid_of(self, slot: int) -> int:
        return self._uid_of_slot[slot]

    def points_at_rows(self, rows: Sequence[int]) -> list[STPoint]:
        """The samples at the given global rows, batch-constructed."""
        xs = self._x[rows].tolist()
        ys = self._y[rows].tolist()
        ts = self._t[rows].tolist()
        return [STPoint(x, y, t) for x, y, t in zip(xs, ys, ts)]

    def _slot_for(self, user_id: int) -> int:
        slot = self._slot_of_uid.get(user_id)
        if slot is None:
            slot = len(self._uid_of_slot)
            self._slot_of_uid[user_id] = slot
            self._uid_of_slot.append(user_id)
            if slot >= self._uid_arr.size:
                grown = np.empty(
                    self._uid_arr.size * 2, dtype=np.int64
                )
                grown[:slot] = self._uid_arr[:slot]
                self._uid_arr = grown
            self._uid_arr[slot] = user_id
        return slot

    # -- ingest ----------------------------------------------------------

    def _reserve(self, needed: int) -> None:
        capacity = self._x.size
        if needed <= capacity:
            return
        while capacity < needed:
            capacity *= 2
        for name in ("_x", "_y", "_t", "_slot"):
            old = getattr(self, name)
            new = np.empty(capacity, dtype=old.dtype)
            new[: self._n] = old[: self._n]
            setattr(self, name, new)

    def _consolidate(self) -> None:
        """Stable-merge the unsorted tail into the sorted main segment.

        Equivalent to a stable argsort of the whole prefix: the main
        segment is already time-sorted, so stable-sorting just the
        tail and merging at ``side="right"`` insert positions
        reproduces the stable order exactly (main rows first on equal
        timestamps, tail rows in arrival order).  O(n + k·log k) for a
        k-row tail instead of O(n·log n) for the full sort.
        """
        n, sn = self._n, self._sorted_n
        if sn == n:
            return
        tail_order = np.argsort(self._t[sn:n], kind="stable")
        where = np.searchsorted(
            self._t[:sn], self._t[sn:n][tail_order], side="right"
        )
        for name in ("_x", "_y", "_t", "_slot"):
            col = getattr(self, name)
            col[:n] = np.insert(
                col[:sn], where, col[sn:n][tail_order]
            )
        self._sorted_n = n

    def append(self, user_id: int, point: STPoint) -> None:
        slot = self._slot_for(user_id)
        self._reserve(self._n + 1)
        i = self._n
        self._x[i] = point.x
        self._y[i] = point.y
        self._t[i] = point.t
        self._slot[i] = slot
        self._n = i + 1
        if self._sorted_n == i and (
            i == 0 or point.t >= self._t[i - 1]
        ):
            self._sorted_n = i + 1
        elif self._n - self._sorted_n > self.TAIL_MAX:
            self._consolidate()

    def append_block(
        self, user_id: int, points: Sequence[STPoint]
    ) -> None:
        if not points:
            return
        slot = self._slot_for(user_id)
        n, m = self._n, len(points)
        self._reserve(n + m)
        last = float(self._t[n - 1]) if n else -math.inf
        in_order = self._sorted_n == n
        for i, p in enumerate(points):
            self._x[n + i] = p.x
            self._y[n + i] = p.y
            self._t[n + i] = p.t
            if p.t < last:
                in_order = False
            last = p.t
        self._slot[n : n + m] = slot
        self._n = n + m
        if in_order:
            self._sorted_n = self._n
        elif m >= self.BLOCK_MERGE_MIN or (
            self._n - self._sorted_n > self.TAIL_MAX
        ):
            # Large out-of-order blocks are bulk loads, read-heavy
            # afterwards: merge now (O(n + m·log m)) so queries never
            # pay a tail scan.  Small blocks (streaming flushes) keep
            # buffering in the tail so ingest-heavy phases don't
            # thrash O(n) merges.
            self._consolidate()

    # -- queries -----------------------------------------------------------

    def _distances(
        self, rows: slice | np.ndarray, target: STPoint
    ) -> np.ndarray:
        # In-place accumulation; the association order stays
        # ((dx² + dy²) + dt²), matching ``st_distance`` up to its
        # libm-pow squaring — selection-grade only, so callers replay
        # ``st_distance`` for any distance they report (see the module
        # docstring).
        d = self._x[rows] - target.x
        d *= d
        dy = self._y[rows] - target.y
        dy *= dy
        d += dy
        dt = self._t[rows] - target.t
        dt *= self.time_scale
        dt *= dt
        d += dt
        return np.sqrt(d, out=d)

    def slots_in_box(self, box: STBox) -> np.ndarray:
        """Slot values (with duplicates) of rows inside ``box``."""
        n, sn = self._n, self._sorted_n
        t = self._t
        lo = int(
            np.searchsorted(t[:sn], box.interval.start, side="left")
        )
        hi = int(
            np.searchsorted(t[:sn], box.interval.end, side="right")
        )
        rect = box.rect
        parts = []
        for rows, is_tail in ((slice(lo, hi), False),
                              (slice(sn, n), True)):
            x = self._x[rows]
            y = self._y[rows]
            mask = (
                (x >= rect.x_min)
                & (x <= rect.x_max)
                & (y >= rect.y_min)
                & (y <= rect.y_max)
            )
            if is_tail:  # unsorted tail: filter time too
                tt = t[rows]
                mask &= (tt >= box.interval.start) & (
                    tt <= box.interval.end
                )
            parts.append(self._slot[rows][mask])
        return np.concatenate(parts)

    def consistent_slots(
        self, contexts: Sequence[STBox]
    ) -> np.ndarray:
        """Definition 7 over all users at once: one in-box mask per
        context, AND-reduced into a per-slot boolean vector."""
        ok = np.ones(self.n_slots, dtype=bool)
        for context in contexts:
            hit = np.zeros(self.n_slots, dtype=bool)
            hit[self.slots_in_box(context)] = True
            ok &= hit
            if not ok.any():
                break
        return ok

    def nearest_slots(
        self,
        target: STPoint,
        count: int,
        exclude_slots: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The (at most) ``count`` users nearest to ``target``, in the
        brute output order.

        Expanding temporal-window search: a window of scaled half-width
        ``R`` around ``target.t`` provably contains every sample at
        distance ``<= R``, so any user whose windowed minimum is
        ``<= R`` has its *global* minimum resolved exactly.  The
        radius expands (×8) until ``count`` users resolve or the
        window covers the whole sorted segment; the final cut sorts
        the resolved users ascending ``(distance, user id)`` — exactly
        the ``heapq.nsmallest`` order of the python brute scan (user
        ids are unique, so the sample point never participates in the
        brute tuple comparisons).

        Returns ``(slots, minima, rows)``: minima are the vectorized
        (IEEE-multiply) distances — selection-grade, possibly one ulp
        off the scalar ``st_distance`` value, so callers must replay
        ``st_distance`` on the winning sample before reporting a
        distance.  ``rows[i]`` is the global row achieving
        ``minima[i]`` when that minimum is *unique* within the user's
        samples, and ``-1`` on an exact distance tie — the caller must
        then replay the per-history scan so python visit order decides
        (every sample at distance ``<= R`` is inside the gather, so
        uniqueness here is uniqueness globally).
        """
        n, sn = self._n, self._sorted_n
        empty_i = np.empty(0, dtype=np.int64)
        empty = (empty_i, np.empty(0), empty_i)
        if n == 0 or count == 0:
            return empty
        t = self._t
        scale = self.time_scale
        has_tail = sn < n
        if has_tail:
            tail = slice(sn, n)
            tail_d = self._distances(tail, target)
            tail_slots = self._slot[tail]
        tx, ty, tt = target.x, target.y, target.t
        seed = math.inf
        if sn:
            probe = int(np.searchsorted(t[:sn], tt, side="left"))
            for i in (probe - 1, probe):
                if 0 <= i < sn:
                    dx = self._x[i] - tx
                    dy = self._y[i] - ty
                    dt = (t[i] - tt) * scale
                    seed = min(
                        seed, math.sqrt(dx * dx + dy * dy + dt * dt)
                    )
        if has_tail and tail_d.size:
            seed = min(seed, float(tail_d.min()))
        radius = seed if seed > 0 else _MIN_RADIUS
        while True:
            if sn == 0:
                lo, hi = 0, 0
            elif scale > 0 and math.isfinite(radius):
                delta = radius / scale
                lo = int(
                    np.searchsorted(t[:sn], tt - delta, side="left")
                )
                hi = int(
                    np.searchsorted(t[:sn], tt + delta, side="right")
                )
                # Exact boundary walk on the computed scaled gap.
                while lo > 0 and (tt - t[lo - 1]) * scale <= radius:
                    lo -= 1
                while hi < sn and (t[hi] - tt) * scale <= radius:
                    hi += 1
            else:
                lo, hi = 0, sn
            complete = lo == 0 and hi == sn
            window_d = self._distances(slice(lo, hi), target)
            if has_tail:
                d_all = np.concatenate([window_d, tail_d])
                s_all = np.concatenate(
                    [self._slot[lo:hi], tail_slots]
                )
            else:
                d_all = window_d
                s_all = self._slot[lo:hi]
            if d_all.size == 0:
                if complete:
                    return empty
                radius *= 8.0
                continue
            # Scatter-min into a per-slot table: float min has no
            # rounding, so each entry is *the* exact minimum over the
            # gathered rows.  ``inf`` doubles as the absent marker —
            # a *computed* distance of inf needs coordinates so large
            # that the python scan raises OverflowError on ``dx**2``,
            # i.e. outside the pinned equivalence envelope.  Excluded
            # users are simply marked absent.  The resolved check
            # below only runs with a finite radius (a non-finite one
            # takes the full-window branch above and exits complete),
            # so absent slots can never resolve.
            n_slots = len(self._uid_of_slot)
            per_slot = np.full(n_slots, np.inf)
            np.minimum.at(per_slot, s_all, d_all)
            if exclude_slots is not None and exclude_slots.size:
                per_slot[exclude_slots] = np.inf
            if complete:
                slots = np.flatnonzero(per_slot < np.inf)
                break
            resolved = per_slot <= radius
            if int(np.count_nonzero(resolved)) >= count:
                slots = np.flatnonzero(resolved)
                break
            radius *= 8.0
        if slots.size == 0:
            return empty
        minima = per_slot[slots]
        sel = np.lexsort((self._uid_arr[slots], minima))[:count]
        slots = slots[sel]
        minima = minima[sel]
        # Representative rows for the selected users only: flag their
        # slots, gather the rows that *achieve* their slot's minimum
        # (usually one per user), and scalar-scan those for a unique
        # minimum.  The gather index space is [window rows | tail
        # rows]; translate back to global rows without materializing
        # an index column.
        width = hi - lo
        wanted = np.zeros(n_slots, dtype=bool)
        wanted[slots] = True
        cand = np.flatnonzero(
            wanted[s_all] & (d_all == per_slot[s_all])
        )
        cand_list = cand.tolist()
        cand_slots = s_all[cand].tolist()
        cand_d = d_all[cand].tolist()
        best = {
            int(slot): (float(minimum), -1)
            for slot, minimum in zip(slots, minima)
        }
        for gathered, slot, value in zip(
            cand_list, cand_slots, cand_d
        ):
            minimum, first = best[slot]
            if value == minimum:
                if first >= 0:
                    best[slot] = (minimum, -2)  # tie: caller replays
                elif first == -1:
                    best[slot] = (minimum, gathered)
        rows = np.empty(slots.size, dtype=np.int64)
        for j in range(slots.size):
            gathered = best[int(slots[j])][1]
            if gathered < 0:
                rows[j] = -1
            else:
                rows[j] = (
                    lo + gathered
                    if gathered < width
                    else sn + (gathered - width)
                )
        return slots, minima, rows
