"""The Trusted Server's trajectory store (all users' PHLs).

Provides exactly the queries Algorithm 1 needs:

* line 2 — per selected user, "the 3D point in its PHL closest to
  ⟨x, y, t⟩": :meth:`TrajectoryStore.closest_point` (and the batched
  :meth:`TrajectoryStore.closest_points`);
* line 5 — "the smallest 3D space … crossed by k trajectories (each one
  for a different user)": :meth:`TrajectoryStore.nearest_users`, which
  returns the k users whose nearest PHL sample is closest to the request
  point.  The paper gives the brute-force bound O(k·n) over all n stored
  points; benchmark E9 quantifies the alternatives.

Backends
--------

``backend="python"`` (the default) stores PHLs as
:class:`~repro.core.phl.PersonalHistory` point lists and answers
queries with the paper's scans.  ``backend="numpy"`` stores the same
PHLs as :class:`~repro.mod.columnar.ColumnarHistory` columns plus a
global :class:`~repro.mod.columnar.ColumnarView`, and answers
``closest_point`` / ``nearest_users`` / ``users_in_box`` /
``lt_consistent_users`` with vectorized array ops that are
decision-equivalent to the python scans — same tuples, same ordering,
same tie-breaks (see :mod:`repro.mod.columnar` for the argument).
``backend=None`` reads the ``REPRO_STORE_BACKEND`` environment
variable (the daemon/loadgen CLIs expose it as ``--store-backend``).

A :class:`~repro.mod.grid_index.GridIndex` may be attached under
either backend and is always kept fed on ingest; with
``backend="numpy"`` the columnar view answers store queries (the grid
remains available through :attr:`TrajectoryStore.index` and keeps the
store switchable), while with ``backend="python"`` the grid answers
``nearest_users`` / ``users_in_box`` as before.
"""

from __future__ import annotations

import heapq
import time
from typing import Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.core.phl import PersonalHistory
from repro.geometry.distance import DEFAULT_TIME_SCALE, st_distance
from repro.geometry.point import STPoint
from repro.geometry.region import STBox
from repro.mod.columnar import (
    ColumnarHistory,
    ColumnarView,
    resolve_backend,
)
from repro.mod.grid_index import GridIndex
from repro.obs.config import Telemetry, TelemetryConfig, resolve_telemetry


class TrajectoryStore:
    """All users' Personal Histories of Locations, optionally indexed.

    Pass ``index_cell_size`` to attach a :class:`GridIndex`; every
    location update is then indexed on ingest.  ``time_scale`` is the
    meters-per-second conversion used in all spatio-temporal distances.
    ``telemetry`` (shared with the :class:`GridIndex`, when attached)
    records query counts and latencies under ``store.*``; every
    ``store.queries`` sample carries a ``method`` label
    (``brute``/``grid``/``numpy``) so dashboards can slice by backend.
    ``backend`` selects the storage/query implementation (see the
    module docstring).
    """

    def __init__(
        self,
        time_scale: float = DEFAULT_TIME_SCALE,
        index_cell_size: float | None = None,
        telemetry: "Telemetry | TelemetryConfig | None" = None,
        backend: str | None = None,
    ) -> None:
        self.time_scale = time_scale
        self.telemetry = resolve_telemetry(telemetry)
        self.backend = resolve_backend(backend)
        #: Monotone ingest counter; consumers caching anything derived
        #: from the histories (e.g. the SLO monitor's incremental
        #: anonymity-set candidates) key their caches on it.  The
        #: batch contract: :meth:`add_point` bumps it once per point,
        #: :meth:`add_points` once per non-empty batch, so
        #: version-keyed caches are invalidated once per bulk replay
        #: instead of once per sample.
        self.version = 0
        self._histories: dict[int, PersonalHistory] = {}
        self._view: ColumnarView | None = (
            ColumnarView(time_scale) if self.backend == "numpy" else None
        )
        self.index: GridIndex | None = None
        if index_cell_size is not None:
            self.index = GridIndex(
                index_cell_size, time_scale, telemetry=self.telemetry
            )

    @classmethod
    def from_histories(
        cls,
        histories: Mapping[int, PersonalHistory],
        time_scale: float = DEFAULT_TIME_SCALE,
        backend: str | None = "numpy",
    ) -> "TrajectoryStore":
        """A store over an existing histories mapping, user order kept.

        The offline analysis entry point: metrics and verifiers that
        receive a plain ``{user_id: PersonalHistory}`` mapping (audit
        pipelines, Theorem 1 checks) build a columnar store once and
        answer their per-user scans with the vectorized
        ``users_in_box`` / ``lt_consistent_users`` paths — identical
        results, array speed.
        """
        store = cls(time_scale=time_scale, backend=backend)
        for user_id, history in histories.items():
            store.add_points(user_id, list(history))
        return store

    def __len__(self) -> int:
        return len(self._histories)

    def __contains__(self, user_id: int) -> bool:
        return user_id in self._histories

    @property
    def histories(self) -> Mapping[int, PersonalHistory]:
        """Read-only mapping of user id to PHL."""
        return self._histories

    @property
    def total_points(self) -> int:
        """The ``n`` of the paper's O(k·n) bound: all stored samples."""
        return sum(len(h) for h in self._histories.values())

    def user_ids(self) -> Iterator[int]:
        return iter(self._histories)

    def history(self, user_id: int) -> PersonalHistory:
        """The PHL of ``user_id``; created empty on first access."""
        history = self._histories.get(user_id)
        if history is None:
            if self._view is not None:
                history = ColumnarHistory(user_id)
            else:
                history = PersonalHistory(user_id)
            self._histories[user_id] = history
        return history

    def add_point(self, user_id: int, point: STPoint) -> None:
        """Ingest one location update (bumps ``version`` once)."""
        self.history(user_id).add(point)
        if self._view is not None:
            self._view.append(user_id, point)
        self.version += 1
        if self.index is not None:
            self.index.insert(user_id, point)

    def add_points(
        self, user_id: int, points: Iterable[STPoint]
    ) -> int:
        """Batch-ingest location updates for one user.

        Equivalent to calling :meth:`add_point` per point except that
        ``version`` is bumped **once** for the whole batch (see
        :attr:`version`).  Returns the number of points ingested; an
        empty batch ingests nothing and does not bump ``version``.
        """
        history = self.history(user_id)
        batch = points if isinstance(points, list) else list(points)
        index = self.index
        if index is not None:
            for point in batch:
                index.insert(user_id, point)
        if batch:
            history.extend(batch)
            if self._view is not None:
                self._view.append_block(user_id, batch)
            self.version += 1
        return len(batch)

    # -- Algorithm 1 line 2 ----------------------------------------------

    @property
    def _point_method(self) -> str:
        return "numpy" if self._view is not None else "brute"

    def closest_point(
        self, user_id: int, target: STPoint
    ) -> STPoint | None:
        """Algorithm 1 line 2 for one user."""
        history = self._histories.get(user_id)
        if history is None:
            return None
        self.telemetry.count(
            "store.queries",
            query="closest_point",
            method=self._point_method,
        )
        return history.closest_point_to(target, self.time_scale)

    def closest_points(
        self, user_ids: Iterable[int], target: STPoint
    ) -> list[tuple[int, STPoint]]:
        """Algorithm 1 line 2 batched over ``user_ids``.

        Returns ``(user_id, closest_sample)`` in input order, skipping
        unknown users and empty histories — exactly the pairs repeated
        :meth:`closest_point` calls would yield.
        """
        results: list[tuple[int, STPoint]] = []
        queried = 0
        for user_id in user_ids:
            history = self._histories.get(user_id)
            if history is None:
                continue
            queried += 1
            closest = history.closest_point_to(target, self.time_scale)
            if closest is not None:
                results.append((user_id, closest))
        if queried:
            self.telemetry.count(
                "store.queries",
                queried,
                query="closest_point",
                method=self._point_method,
            )
        return results

    # -- Algorithm 1 line 5 ----------------------------------------------

    def nearest_users(
        self,
        target: STPoint,
        count: int,
        exclude: frozenset[int] | set[int] = frozenset(),
    ) -> list[tuple[int, STPoint, float]]:
        """The ``count`` users whose nearest PHL sample is closest.

        Returns ``(user_id, closest_sample, distance)`` sorted by
        ``(distance, user_id)``; fewer tuples when not enough distinct
        users exist.  Dispatches to the columnar backend when selected,
        else to the grid index when attached, else to the paper's
        brute-force scan.
        """
        if self._view is not None:
            method = "numpy"
        elif self.index is not None:
            method = "grid"
        else:
            method = "brute"
        if not self.telemetry.enabled:
            return self._nearest_users_impl(target, count, exclude)
        start = time.perf_counter()
        result = self._nearest_users_impl(target, count, exclude)
        self._record_query("nearest_users", method, start)
        return result

    def _nearest_users_impl(
        self,
        target: STPoint,
        count: int,
        exclude: frozenset[int] | set[int],
    ) -> list[tuple[int, STPoint, float]]:
        if self._view is not None:
            return self._nearest_users_numpy_impl(target, count, exclude)
        if self.index is not None:
            return self.index.nearest_users(target, count, exclude=exclude)
        return self._nearest_users_brute_impl(target, count, exclude)

    def _record_query(self, query: str, method: str, start: float) -> None:
        elapsed_ms = (time.perf_counter() - start) * 1000.0
        self.telemetry.count("store.queries", query=query, method=method)
        self.telemetry.observe(
            "store.query_ms", elapsed_ms, query=query, method=method
        )

    def nearest_users_brute(
        self,
        target: STPoint,
        count: int,
        exclude: frozenset[int] | set[int] = frozenset(),
    ) -> list[tuple[int, STPoint, float]]:
        """The paper's brute-force selection: scan every user's PHL.

        "Simply considering the nearest neighbor in the PHL of each user
        and then taking the closest k points", worst case O(k·n).
        """
        if not self.telemetry.enabled:
            return self._nearest_users_brute_impl(target, count, exclude)
        start = time.perf_counter()
        result = self._nearest_users_brute_impl(target, count, exclude)
        self._record_query("nearest_users", "brute", start)
        return result

    def _nearest_users_brute_impl(
        self,
        target: STPoint,
        count: int,
        exclude: frozenset[int] | set[int] = frozenset(),
    ) -> list[tuple[int, STPoint, float]]:
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        candidates: list[tuple[float, int, STPoint]] = []
        for user_id, history in self._histories.items():
            if user_id in exclude:
                continue
            closest = history.closest_point_to(target, self.time_scale)
            if closest is None:
                continue
            distance = st_distance(closest, target, self.time_scale)
            candidates.append((distance, user_id, closest))
        nearest = heapq.nsmallest(count, candidates)
        return [
            (user_id, point, distance)
            for distance, user_id, point in nearest
        ]

    def _nearest_users_numpy_impl(
        self,
        target: STPoint,
        count: int,
        exclude: frozenset[int] | set[int],
    ) -> list[tuple[int, STPoint, float]]:
        """Columnar Algorithm 1 line 5 (decision-equivalent to brute).

        The view resolves exact per-user minimum distances for a
        superset of the answer and cuts it to the brute ordering —
        ascending ``(distance, user_id)``, the order
        ``heapq.nsmallest`` gives the brute tuples.  When a user's
        minimum is achieved by a *unique* sample, that sample IS what
        the per-history scan would report, so it comes straight from
        the gathered row; only exact distance ties replay
        ``closest_point_to`` so python visit order breaks them.
        """
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        view = self._view
        assert view is not None
        if count == 0 or view.n_rows == 0:
            return []
        exclude_slots = None
        if exclude:
            exclude_slots = np.array(
                sorted(
                    slot
                    for uid in exclude
                    if (slot := view.slot_of(uid)) is not None
                ),
                dtype=np.int64,
            )
        slots, minima, rows = view.nearest_slots(
            target, count, exclude_slots
        )
        rows_list = rows.tolist()
        reps = iter(
            view.points_at_rows([r for r in rows_list if r >= 0])
        )
        results: list[tuple[int, STPoint, float]] = []
        for slot, row in zip(slots.tolist(), rows_list):
            user_id = view.uid_of(slot)
            if row >= 0:
                closest = next(reps)
            else:
                tied = self._histories[user_id].closest_point_to(
                    target, self.time_scale
                )
                assert tied is not None
                closest = tied
            # The reported distance replays ``st_distance``: the
            # vectorized minima use IEEE multiplies where the scalar
            # path goes through libm ``pow``, which can differ in the
            # last ulp — minima decide *selection*, never the output.
            results.append(
                (
                    user_id,
                    closest,
                    st_distance(closest, target, self.time_scale),
                )
            )
        return results

    # -- ST-range and LT-consistency --------------------------------------

    def users_in_box(self, box: STBox) -> set[int]:
        """Distinct users with at least one sample inside ``box``."""
        if self._view is not None:
            method = "numpy"
        elif self.index is not None:
            method = "grid"
        else:
            method = "brute"
        if not self.telemetry.enabled:
            return self._users_in_box_impl(box)
        start = time.perf_counter()
        result = self._users_in_box_impl(box)
        self._record_query("users_in_box", method, start)
        return result

    def _users_in_box_impl(self, box: STBox) -> set[int]:
        if self._view is not None:
            view = self._view
            return {
                view.uid_of(int(slot))
                for slot in np.unique(view.slots_in_box(box))
            }
        if self.index is not None:
            return self.index.users_in_box(box)
        return {
            user_id
            for user_id, history in self._histories.items()
            if history.visits_box(box)
        }

    def lt_consistent_users(
        self,
        contexts: Sequence[STBox] | Iterable[STBox],
        exclude_user: int | None = None,
    ) -> list[int]:
        """Users whose PHL is LT-consistent with every context.

        The store-level form of Definition 7 over all users at once
        (the inner loop of historical-k candidate recomputation), in
        ingest order — exactly the ids a scan of
        :attr:`histories` filtered by ``lt_consistent_with`` yields.
        An empty ``contexts`` is vacuously consistent with everyone.
        """
        boxes = list(contexts)
        method = (
            "numpy"
            if self._view is not None and boxes
            else "brute"
        )
        if not self.telemetry.enabled:
            return self._lt_consistent_users_impl(boxes, exclude_user)
        start = time.perf_counter()
        result = self._lt_consistent_users_impl(boxes, exclude_user)
        self._record_query("lt_consistent_users", method, start)
        return result

    def _lt_consistent_users_impl(
        self, boxes: list[STBox], exclude_user: int | None
    ) -> list[int]:
        view = self._view
        if view is not None and boxes:
            ok = view.consistent_slots(boxes)
            consistent = []
            for user_id in self._histories:
                if user_id == exclude_user:
                    continue
                slot = view.slot_of(user_id)
                if slot is not None and ok[slot]:
                    consistent.append(user_id)
            return consistent
        return [
            user_id
            for user_id, history in self._histories.items()
            if user_id != exclude_user
            and history.lt_consistent_with(boxes)
        ]
