"""The Trusted Server's trajectory store (all users' PHLs).

Provides exactly the queries Algorithm 1 needs:

* line 2 — per selected user, "the 3D point in its PHL closest to
  ⟨x, y, t⟩": :meth:`TrajectoryStore.closest_point`;
* line 5 — "the smallest 3D space … crossed by k trajectories (each one
  for a different user)": :meth:`TrajectoryStore.nearest_users`, which
  returns the k users whose nearest PHL sample is closest to the request
  point.  The paper gives the brute-force bound O(k·n) over all n stored
  points; attaching a :class:`~repro.mod.grid_index.GridIndex` replaces
  the scan with an expanding ring search (benchmark E9 quantifies the
  gap).
"""

from __future__ import annotations

import heapq
import time
from typing import Iterable, Iterator, Mapping

from repro.core.phl import PersonalHistory
from repro.geometry.distance import DEFAULT_TIME_SCALE, st_distance
from repro.geometry.point import STPoint
from repro.geometry.region import STBox
from repro.mod.grid_index import GridIndex
from repro.obs.config import Telemetry, TelemetryConfig, resolve_telemetry


class TrajectoryStore:
    """All users' Personal Histories of Locations, optionally indexed.

    Pass ``index_cell_size`` to attach a :class:`GridIndex`; every
    location update is then indexed on ingest.  ``time_scale`` is the
    meters-per-second conversion used in all spatio-temporal distances.
    ``telemetry`` (shared with the :class:`GridIndex`, when attached)
    records query counts and latencies under ``store.*``.
    """

    def __init__(
        self,
        time_scale: float = DEFAULT_TIME_SCALE,
        index_cell_size: float | None = None,
        telemetry: "Telemetry | TelemetryConfig | None" = None,
    ) -> None:
        self.time_scale = time_scale
        self.telemetry = resolve_telemetry(telemetry)
        #: Monotone ingest counter; consumers caching anything derived
        #: from the histories (e.g. the SLO monitor's incremental
        #: anonymity-set candidates) key their caches on it.
        self.version = 0
        self._histories: dict[int, PersonalHistory] = {}
        self.index: GridIndex | None = None
        if index_cell_size is not None:
            self.index = GridIndex(
                index_cell_size, time_scale, telemetry=self.telemetry
            )

    def __len__(self) -> int:
        return len(self._histories)

    def __contains__(self, user_id: int) -> bool:
        return user_id in self._histories

    @property
    def histories(self) -> Mapping[int, PersonalHistory]:
        """Read-only mapping of user id to PHL."""
        return self._histories

    @property
    def total_points(self) -> int:
        """The ``n`` of the paper's O(k·n) bound: all stored samples."""
        return sum(len(h) for h in self._histories.values())

    def user_ids(self) -> Iterator[int]:
        return iter(self._histories)

    def history(self, user_id: int) -> PersonalHistory:
        """The PHL of ``user_id``; created empty on first access."""
        history = self._histories.get(user_id)
        if history is None:
            history = PersonalHistory(user_id)
            self._histories[user_id] = history
        return history

    def add_point(self, user_id: int, point: STPoint) -> None:
        """Ingest one location update."""
        self.history(user_id).add(point)
        self.version += 1
        if self.index is not None:
            self.index.insert(user_id, point)

    def add_points(
        self, user_id: int, points: Iterable[STPoint]
    ) -> int:
        """Batch-ingest location updates for one user.

        Equivalent to calling :meth:`add_point` per point except that
        ``version`` is bumped **once** for the whole batch and index
        inserts are grouped, so version-keyed consumer caches (e.g. the
        SLO monitor's incremental anonymity-set candidates) are
        invalidated once per batch instead of once per point during bulk
        replay.  Returns the number of points ingested; an empty batch
        ingests nothing and does not bump ``version``.
        """
        history = self.history(user_id)
        count = 0
        index = self.index
        for point in points:
            history.add(point)
            if index is not None:
                index.insert(user_id, point)
            count += 1
        if count:
            self.version += 1
        return count

    def add_trajectory(
        self, user_id: int, points: Iterable[STPoint]
    ) -> None:
        """Ingest a batch of location updates for one user."""
        self.add_points(user_id, points)

    def closest_point(
        self, user_id: int, target: STPoint
    ) -> STPoint | None:
        """Algorithm 1 line 2 for one user."""
        history = self._histories.get(user_id)
        if history is None:
            return None
        self.telemetry.count("store.queries", query="closest_point")
        return history.closest_point_to(target, self.time_scale)

    def nearest_users(
        self,
        target: STPoint,
        count: int,
        exclude: frozenset[int] | set[int] = frozenset(),
    ) -> list[tuple[int, STPoint, float]]:
        """The ``count`` users whose nearest PHL sample is closest.

        Returns ``(user_id, closest_sample, distance)`` sorted by
        distance; fewer tuples when not enough distinct users exist.
        Dispatches to the grid index when attached, otherwise to the
        paper's brute-force scan.
        """
        method = "grid" if self.index is not None else "brute"
        if not self.telemetry.enabled:
            return self._nearest_users_impl(target, count, exclude)
        start = time.perf_counter()
        result = self._nearest_users_impl(target, count, exclude)
        self._record_query("nearest_users", method, start)
        return result

    def _nearest_users_impl(
        self,
        target: STPoint,
        count: int,
        exclude: frozenset[int] | set[int],
    ) -> list[tuple[int, STPoint, float]]:
        if self.index is not None:
            return self.index.nearest_users(target, count, exclude=exclude)
        return self._nearest_users_brute_impl(target, count, exclude)

    def _record_query(self, query: str, method: str, start: float) -> None:
        elapsed_ms = (time.perf_counter() - start) * 1000.0
        self.telemetry.count("store.queries", query=query, method=method)
        self.telemetry.observe(
            "store.query_ms", elapsed_ms, query=query, method=method
        )

    def nearest_users_brute(
        self,
        target: STPoint,
        count: int,
        exclude: frozenset[int] | set[int] = frozenset(),
    ) -> list[tuple[int, STPoint, float]]:
        """The paper's brute-force selection: scan every user's PHL.

        "Simply considering the nearest neighbor in the PHL of each user
        and then taking the closest k points", worst case O(k·n).
        """
        if not self.telemetry.enabled:
            return self._nearest_users_brute_impl(target, count, exclude)
        start = time.perf_counter()
        result = self._nearest_users_brute_impl(target, count, exclude)
        self._record_query("nearest_users", "brute", start)
        return result

    def _nearest_users_brute_impl(
        self,
        target: STPoint,
        count: int,
        exclude: frozenset[int] | set[int] = frozenset(),
    ) -> list[tuple[int, STPoint, float]]:
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        candidates: list[tuple[float, int, STPoint]] = []
        for user_id, history in self._histories.items():
            if user_id in exclude:
                continue
            closest = history.closest_point_to(target, self.time_scale)
            if closest is None:
                continue
            distance = st_distance(closest, target, self.time_scale)
            candidates.append((distance, user_id, closest))
        nearest = heapq.nsmallest(count, candidates)
        return [
            (user_id, point, distance)
            for distance, user_id, point in nearest
        ]

    def users_in_box(self, box: STBox) -> set[int]:
        """Distinct users with at least one sample inside ``box``."""
        method = "grid" if self.index is not None else "brute"
        if not self.telemetry.enabled:
            return self._users_in_box_impl(box)
        start = time.perf_counter()
        result = self._users_in_box_impl(box)
        self._record_query("users_in_box", method, start)
        return result

    def _users_in_box_impl(self, box: STBox) -> set[int]:
        if self.index is not None:
            return self.index.users_in_box(box)
        return {
            user_id
            for user_id, history in self._histories.items()
            if history.visits_box(box)
        }
