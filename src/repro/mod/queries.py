"""Spatio-temporal range queries over the trajectory store.

Thin, explicit wrappers used by the anonymity-set computations and the
baselines; they exist so calling code reads as the paper's prose does
("the set of users who were in that area in that time interval").
"""

from __future__ import annotations

from repro.geometry.region import Interval, Rect, STBox
from repro.mod.store import TrajectoryStore


def users_in_box(store: TrajectoryStore, box: STBox) -> set[int]:
    """Users with at least one PHL sample inside the box."""
    return store.users_in_box(box)


def count_users_in_box(store: TrajectoryStore, box: STBox) -> int:
    """Size of the single-context anonymity set for ``box``."""
    return len(store.users_in_box(box))


def users_in_area_during(
    store: TrajectoryStore, area: Rect, interval: Interval
) -> set[int]:
    """Users present in ``area`` at some instant of ``interval``.

    Presence is judged by recorded samples, matching Definition 7's
    point-in-box test (no interpolation across the area boundary).
    """
    return store.users_in_box(STBox(area, interval))
