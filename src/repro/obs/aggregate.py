"""Fleet-level aggregation of scraped telemetry.

One daemon exposes its registry through the ``metrics`` protocol op;
a sharded fleet exposes N of them.  This module merges those scrapes
into one coherent view, operating purely on parsed Prometheus samples
(:func:`repro.obs.export.parse_prometheus` /
:func:`~repro.obs.export.parse_exposition`) so it works against any
worker that speaks the exposition format:

* **counters** (``_total``) and histogram components (``_bucket`` /
  ``_sum`` / ``_count``) *sum* across workers.  Cumulative bucket
  series are merged as step functions — a worker elides bounds whose
  cumulative count did not change, so the merged value at each bound
  is the sum of every worker's cumulative count *at* that bound, not
  a naive key-wise sum;
* **gauges** (and summary ``quantile`` samples, which cannot be
  combined) keep per-worker identity under an added ``worker`` label;
* **exemplars** keep the worst observation per bucket across the
  fleet (the trace id most worth pulling).

:class:`MetricsCollector` polls N workers concurrently through an
injected async scrape callable (the concrete
:class:`~repro.serve.client.ServeClient` scraper lives in
:mod:`repro.serve.fleet` — this module imports nothing from
``repro.serve``) and assembles the per-worker ``traces`` rings into
cross-worker :class:`FleetTrace` entries grouped by trace id.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Awaitable, Callable, Mapping, Sequence

from repro.obs.export import Samples

#: One scraped sample key: ``(name, ((label, value), ...))``.
SampleKey = tuple[str, tuple[tuple[str, str], ...]]

#: Bucket exemplars per sample key: ``key -> (value, trace_id)``.
Exemplars = dict[SampleKey, tuple[float, str]]


def merge_rule(
    name: str, labels: Sequence[tuple[str, str]]
) -> str:
    """Classify one sample: ``"sum"``, ``"bucket"``, or ``"worker"``.

    The exposition format does not carry instrument types past the
    ``# TYPE`` comments (which a minimal scrape may drop), so the
    classification leans on the naming conventions the renderer
    guarantees: counters end in ``_total``, histogram series in
    ``_bucket``/``_sum``/``_count``; ``quantile``-labelled summary
    samples and everything else (gauges) keep per-worker identity.
    """
    keys = [key for key, _value in labels]
    if "quantile" in keys:
        return "worker"
    if name.endswith("_bucket") and "le" in keys:
        return "bucket"
    if name.endswith(("_total", "_sum", "_count")):
        return "sum"
    return "worker"


def _cumulative_at(
    series: Sequence[tuple[float, float]], bound: float
) -> float:
    """Step-function read of an elided cumulative bucket series.

    ``series`` is ``(bound, cumulative)`` sorted ascending; the value
    at an un-rendered bound equals the largest rendered bound at or
    below it (0 before the first) — exactly the elision rule of
    :func:`repro.obs.export.render_prometheus`.
    """
    value = 0.0
    for series_bound, cumulative in series:
        if series_bound > bound:
            break
        value = cumulative
    return value


def merge_samples(
    per_worker: Mapping[str, Samples], worker_label: str = "worker"
) -> Samples:
    """Merge N workers' scrapes into one fleet sample set.

    Summed series come back under their (sorted) original labels;
    per-worker series gain a ``(worker_label, <worker>)`` label.  The
    merged output of two workers equals what one registry serving the
    combined workload would expose (the property the aggregate tests
    pin for counters and histogram buckets).
    """
    merged: Samples = {}
    sums: dict[SampleKey, float] = {}
    # (name, base labels) -> worker -> [(bound, cum)], le kept as the
    # original string so merged keys match a native exposition.
    buckets: dict[
        tuple[str, tuple[tuple[str, str], ...]],
        dict[str, list[tuple[float, float, str]]],
    ] = {}
    for worker in sorted(per_worker):
        for (name, labels), value in per_worker[worker].items():
            rule = merge_rule(name, labels)
            if rule == "sum":
                key = (name, tuple(sorted(labels)))
                sums[key] = sums.get(key, 0.0) + value
            elif rule == "bucket":
                base = tuple(
                    sorted(
                        (k, v) for k, v in labels if k != "le"
                    )
                )
                le = dict(labels)["le"]
                buckets.setdefault((name, base), {}).setdefault(
                    worker, []
                ).append((float(le), value, le))
            else:
                key = (
                    name,
                    tuple(
                        sorted(
                            tuple(labels)
                            + ((worker_label, worker),)
                        )
                    ),
                )
                merged[key] = value
    merged.update(sums)
    for (name, base), by_worker in buckets.items():
        series: dict[str, list[tuple[float, float]]] = {}
        le_text: dict[float, str] = {}
        for worker, entries in by_worker.items():
            entries.sort()
            series[worker] = [
                (bound, cum) for bound, cum, _le in entries
            ]
            for bound, _cum, le in entries:
                le_text[bound] = le
        for bound in sorted(le_text):
            total = sum(
                _cumulative_at(worker_series, bound)
                for worker_series in series.values()
            )
            key = (name, base + (("le", le_text[bound]),))
            merged[key] = total
    return merged


def merge_exemplars(
    per_worker: Mapping[str, Exemplars],
) -> Exemplars:
    """Keep the fleet-wide worst exemplar per bucket series.

    Keys are normalised to sorted labels so they line up with
    :func:`merge_samples` output; on a value tie the lexically first
    trace id wins, keeping the merge order-independent.
    """
    merged: Exemplars = {}
    for worker in sorted(per_worker):
        for (name, labels), (value, trace_id) in (
            per_worker[worker].items()
        ):
            key = (name, tuple(sorted(labels)))
            kept = merged.get(key)
            if (
                kept is None
                or value > kept[0]
                or (value == kept[0] and trace_id < kept[1])
            ):
                merged[key] = (value, trace_id)
    return merged


@dataclass(frozen=True)
class FleetTrace:
    """One trace id's activity across the fleet."""

    trace_id: str
    workers: tuple[str, ...]
    op: str | None
    decision: str | None
    queue_ms: float
    total_ms: float
    shed: bool
    #: The raw per-worker ring entries (each with a ``worker`` key).
    entries: tuple[dict, ...]


def assemble_traces(
    per_worker: Mapping[str, Sequence[Mapping]],
) -> list[FleetTrace]:
    """Group per-worker ``traces`` ring entries by trace id.

    A request that touched several workers (fan-out, retry on another
    shard) collapses into one :class:`FleetTrace` listing every worker
    that saw it; ``total_ms``/``queue_ms`` take the worst observation
    and ``shed`` is true if any worker shed it.  Sorted slowest first.
    """
    grouped: dict[str, list[tuple[str, dict]]] = {}
    for worker in sorted(per_worker):
        for entry in per_worker[worker]:
            trace_id = entry.get("trace_id")
            if not isinstance(trace_id, str):
                continue
            grouped.setdefault(trace_id, []).append(
                (worker, dict(entry))
            )
    fleet: list[FleetTrace] = []
    for trace_id, entries in grouped.items():
        op = next(
            (e.get("op") for _w, e in entries if e.get("op")), None
        )
        decision = next(
            (
                e.get("decision")
                for _w, e in entries
                if e.get("decision")
            ),
            None,
        )
        fleet.append(
            FleetTrace(
                trace_id=trace_id,
                workers=tuple(
                    sorted({worker for worker, _e in entries})
                ),
                op=op,
                decision=decision,
                queue_ms=max(
                    float(e.get("queue_ms") or 0.0)
                    for _w, e in entries
                ),
                total_ms=max(
                    float(e.get("total_ms") or 0.0)
                    for _w, e in entries
                ),
                shed=any(bool(e.get("shed")) for _w, e in entries),
                entries=tuple(
                    {**e, "worker": worker} for worker, e in entries
                ),
            )
        )
    fleet.sort(key=lambda t: (-t.total_ms, t.trace_id))
    return fleet


@dataclass
class WorkerScrape:
    """Everything one polling round pulled from one worker."""

    worker: str
    samples: Samples = field(default_factory=dict)
    exemplars: Exemplars = field(default_factory=dict)
    #: ``health`` op fields (``status``/``slo_ok``/…), None if not
    #: fetched.
    health: dict | None = None
    traces: list[dict] = field(default_factory=list)


def _shard_sort_key(shard: str) -> tuple[int, object]:
    """Numeric shard ids sort numerically, everything else after."""
    try:
        return (0, int(shard))
    except ValueError:
        return (1, shard)


@dataclass
class FleetView:
    """One merged snapshot of the whole fleet."""

    workers: tuple[str, ...]
    scrapes: dict[str, WorkerScrape]
    #: target -> error string for workers that failed to scrape.
    errors: dict[str, str]
    samples: Samples
    exemplars: Exemplars
    traces: list[FleetTrace]

    @property
    def healthy(self) -> bool:
        """Every worker reachable, ``status=="ok"``, and SLOs green."""
        if self.errors or not self.scrapes:
            return False
        for scrape in self.scrapes.values():
            health = scrape.health
            if health is None:
                continue
            if health.get("status") != "ok":
                return False
            if not health.get("slo_ok", True):
                return False
        return True

    @property
    def shards(self) -> tuple[str, ...]:
        """Distinct ``shard`` label values in the merged samples.

        Sharded serving (:class:`~repro.serve.shard.ShardRouter`)
        labels its per-request series with the owning shard id; an
        unsharded fleet has no such labels and this is empty.
        """
        found: set[str] = set()
        for (_name, labels), _value in self.samples.items():
            for key, value in labels:
                if key == "shard":
                    found.add(value)
        return tuple(sorted(found, key=_shard_sort_key))

    def shard_series(self, name: str) -> dict[str, float]:
        """One merged counter's totals grouped by ``shard`` label.

        Sums every ``name`` sample carrying a ``shard`` label over its
        remaining label dimensions, so e.g.
        ``shard_series("serve_served_total")`` is the per-shard served
        count across the whole fleet.  Meaningful for counters (which
        merge by sum); samples without a ``shard`` label are ignored.
        """
        totals: dict[str, float] = {}
        for (sample_name, labels), value in self.samples.items():
            if sample_name != name:
                continue
            shard = next(
                (v for k, v in labels if k == "shard"), None
            )
            if shard is None:
                continue
            totals[shard] = totals.get(shard, 0.0) + value
        return totals


class MetricsCollector:
    """Poll N workers and merge their scrapes into one fleet view.

    ``scrape`` is an async callable ``target -> WorkerScrape`` — the
    injection point that keeps this module free of any transport
    dependency (see :func:`repro.serve.fleet.scrape_worker` for the
    wire implementation).  Unreachable workers land in
    :attr:`FleetView.errors` instead of failing the round, so one dead
    shard cannot blind the dashboard to the rest of the fleet.
    """

    def __init__(
        self,
        scrape: Callable[[str], Awaitable[WorkerScrape]],
        targets: Sequence[str],
    ) -> None:
        if not targets:
            raise ValueError("MetricsCollector needs >= 1 target")
        self.scrape = scrape
        self.targets = tuple(targets)

    async def collect(self) -> FleetView:
        """One concurrent polling round over every target."""
        results = await asyncio.gather(
            *(self.scrape(target) for target in self.targets),
            return_exceptions=True,
        )
        scrapes: dict[str, WorkerScrape] = {}
        errors: dict[str, str] = {}
        for target, result in zip(self.targets, results):
            if isinstance(result, BaseException):
                errors[target] = (
                    f"{type(result).__name__}: {result}"
                )
                continue
            worker = result.worker
            if worker in scrapes:
                worker = f"{worker}#{target}"
            scrapes[worker] = result
        return FleetView(
            workers=tuple(sorted(scrapes)),
            scrapes=scrapes,
            errors=errors,
            samples=merge_samples(
                {w: s.samples for w, s in scrapes.items()}
            ),
            exemplars=merge_exemplars(
                {w: s.exemplars for w, s in scrapes.items()}
            ),
            traces=assemble_traces(
                {w: s.traces for w, s in scrapes.items()}
            ),
        )
