"""Observability: tracing, metrics, and audit telemetry for the TS.

The paper's Trusted Server is an online decision pipeline — monitor →
generalize (Algorithm 1) → unlink — whose behaviour the experiments can
only inspect post-hoc through the audit trail.  This subpackage adds the
per-request telemetry a production anonymizer needs:

* :mod:`repro.obs.tracing` — nestable wall-clock spans (`Span`,
  `Tracer`) with context-manager and decorator APIs;
* :mod:`repro.obs.metrics` — a registry of counters, gauges, and
  fixed-bucket histograms (p50/p95/p99 summaries) keyed by name+labels;
* :mod:`repro.obs.sinks` — pluggable event sinks: in-memory ring
  buffer, JSONL file writer, and a console reporter routed through the
  stdlib ``logging`` tree under ``repro.obs``;
* :mod:`repro.obs.config` — :class:`TelemetryConfig` and the
  :class:`Telemetry` facade the instrumented components receive.
  Disabled telemetry (the default) is a shared no-op singleton whose
  every operation costs a single ``enabled`` branch;
* :mod:`repro.obs.render` — fixed-width text rendering of metric
  snapshots for examples and benchmark output;
* :mod:`repro.obs.export` — Prometheus text exposition of the metrics
  registry (with OpenMetrics trace exemplars) plus the matching parser
  used by tests and the ``tools/obstop.py`` dashboard;
* :mod:`repro.obs.slo` — the second observability layer: a streaming
  :class:`PrivacyMonitor` consuming the anonymizer's decision events
  and evaluating declarative :class:`SloRule` thresholds (alerting
  through the sink fan-out) over sliding windows;
* :mod:`repro.obs.bench` — benchmark regression artifacts
  (``BENCH_<exp>.json``) and the comparator behind
  ``tools/bench_gate.py``.

Everything is zero-dependency stdlib Python (plus the ``repro``
*value* layers — geometry, granularity — which the SLO estimators
need); nothing here imports the pipeline packages (``core``, ``ts``,
``attack``), so any layer can be instrumented without cycles.
"""

from repro.obs.bench import (
    BenchArtifact,
    BenchComparison,
    BenchDelta,
    compare_artifacts,
    export_bench,
    load_bench_artifact,
)
from repro.obs.config import (
    NULL_TELEMETRY,
    Telemetry,
    TelemetryConfig,
    resolve_telemetry,
)
from repro.obs.aggregate import (
    Exemplars,
    FleetTrace,
    FleetView,
    MetricsCollector,
    WorkerScrape,
    assemble_traces,
    merge_exemplars,
    merge_rule,
    merge_samples,
)
from repro.obs.export import (
    parse_exposition,
    parse_prometheus,
    quantile_from_buckets,
    render_prometheus,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    HistogramSummary,
    MetricsRegistry,
    MetricsSnapshot,
)
from repro.obs.profile import (
    ActivitySlot,
    CollapsedStack,
    ProfileReport,
    SamplingProfiler,
    StageRow,
    TraceRow,
    render_stage_table,
    report_from_dict,
)
from repro.obs.render import render_summary
from repro.obs.sinks import (
    JSONL_READ_STATS,
    ConsoleSink,
    JsonlReadStats,
    JsonlSink,
    RingBufferSink,
    TelemetrySink,
    read_jsonl,
    read_jsonl_rotated,
    rotated_paths,
)
from repro.obs.slo import (
    PrivacyMonitor,
    SloAlert,
    SloRule,
    SloStatus,
    parse_slo,
)
from repro.obs.tracing import Span, SpanRecord, TraceContext, Tracer

__all__ = [
    "TelemetryConfig",
    "Telemetry",
    "NULL_TELEMETRY",
    "resolve_telemetry",
    "MetricsRegistry",
    "MetricsSnapshot",
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramSummary",
    "DEFAULT_BUCKETS",
    "Tracer",
    "Span",
    "SpanRecord",
    "TraceContext",
    "render_prometheus",
    "parse_prometheus",
    "parse_exposition",
    "quantile_from_buckets",
    "ActivitySlot",
    "SamplingProfiler",
    "ProfileReport",
    "CollapsedStack",
    "StageRow",
    "TraceRow",
    "render_stage_table",
    "report_from_dict",
    "Exemplars",
    "FleetTrace",
    "FleetView",
    "MetricsCollector",
    "WorkerScrape",
    "assemble_traces",
    "merge_exemplars",
    "merge_rule",
    "merge_samples",
    "TelemetrySink",
    "RingBufferSink",
    "JsonlSink",
    "ConsoleSink",
    "JsonlReadStats",
    "JSONL_READ_STATS",
    "read_jsonl",
    "read_jsonl_rotated",
    "rotated_paths",
    "render_summary",
    "PrivacyMonitor",
    "SloRule",
    "SloAlert",
    "SloStatus",
    "parse_slo",
    "BenchArtifact",
    "BenchComparison",
    "BenchDelta",
    "compare_artifacts",
    "export_bench",
    "load_bench_artifact",
]
