"""Counters, gauges, and fixed-bucket histograms keyed by name+labels.

A :class:`MetricsRegistry` is a flat dictionary from ``(name, labels)``
to instrument; instruments are created on first touch and accumulate for
the registry's lifetime.  :meth:`MetricsRegistry.snapshot` freezes the
current state into a :class:`MetricsSnapshot` — plain data that survives
JSON round-trips, so sinks can export it and tests can assert on it.

Histograms use fixed bucket bounds (default: a 1–2–5 decade series
spanning ``1e-3 .. 5e9``) and report percentiles by linear interpolation
inside the bucket containing the target rank, clamped to the exact
observed min/max.  For distributions that fill a bucket uniformly the
interpolation is near-exact; in the worst case the error is one bucket
width, which the decade series keeps below ~60% of the value — adequate
for latency telemetry, and trivially swappable via custom bounds.

The registry is deliberately single-threaded (like the rest of the
reproduction); sharding it per worker is the obvious extension when the
TS itself goes concurrent.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Mapping

#: ``(name, ((label, value), ...))`` — the registry key of one instrument.
MetricKey = tuple[str, tuple[tuple[str, str], ...]]

#: Default histogram bucket upper bounds: 1–2–5 per decade, 1e-3 … 5e9.
DEFAULT_BUCKETS: tuple[float, ...] = tuple(
    m * 10.0**e for e in range(-3, 10) for m in (1.0, 2.0, 5.0)
)


def label_key(labels: Mapping[str, object]) -> tuple[tuple[str, str], ...]:
    """Canonical hashable form of a label mapping (sorted, stringified)."""
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "labels", "value")

    def __init__(
        self, name: str, labels: tuple[tuple[str, str], ...] = ()
    ) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the count."""
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        self.value += amount


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "labels", "value")

    def __init__(
        self, name: str, labels: tuple[tuple[str, str], ...] = ()
    ) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


@dataclass(frozen=True)
class HistogramSummary:
    """Frozen summary of one histogram at snapshot time."""

    count: int
    total: float
    minimum: float
    maximum: float
    p50: float
    p95: float
    p99: float

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else float("nan")

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "HistogramSummary":
        return cls(
            count=int(data["count"]),
            total=float(data["total"]),
            minimum=float(data["min"]),
            maximum=float(data["max"]),
            p50=float(data["p50"]),
            p95=float(data["p95"]),
            p99=float(data["p99"]),
        )


class Histogram:
    """Fixed-bucket histogram with exact count/sum/min/max.

    ``bounds`` are the inclusive upper edges of the buckets; one
    overflow bucket catches everything beyond the last edge.
    """

    __slots__ = (
        "name", "labels", "bounds", "counts",
        "count", "total", "minimum", "maximum", "exemplars",
    )

    def __init__(
        self,
        name: str,
        labels: tuple[tuple[str, str], ...] = (),
        bounds: Iterable[float] | None = None,
    ) -> None:
        self.name = name
        self.labels = labels
        self.bounds = tuple(
            sorted(DEFAULT_BUCKETS if bounds is None else bounds)
        )
        if not self.bounds:
            raise ValueError("a histogram needs at least one bucket bound")
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf
        #: bucket index → ``(value, trace_id)`` of the worst traced
        #: observation in the bucket's current window (see
        #: :meth:`drain_exemplars`).
        self.exemplars: dict[int, tuple[float, str]] = {}

    def record(self, value: float, trace_id: str | None = None) -> None:
        """Record one observation.

        ``trace_id`` (optional) keeps the observation as the bucket's
        exemplar when it is the worst value the bucket has seen this
        window — the breadcrumb that turns "p99 spiked" into a concrete
        trace to pull from the JSONL sink.  Untraced observations pay
        one predicate for the feature, never an allocation.
        """
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        bucket = self._bucket_of(value)
        self.counts[bucket] += 1
        if trace_id is not None:
            worst = self.exemplars.get(bucket)
            if worst is None or value >= worst[0]:
                self.exemplars[bucket] = (value, trace_id)

    def drain_exemplars(self) -> dict[int, tuple[float, str]]:
        """Return and reset the per-bucket exemplars (window roll)."""
        drained = self.exemplars
        self.exemplars = {}
        return drained

    def _bucket_of(self, value: float) -> int:
        # Binary search for the first bound >= value.
        lo, hi = 0, len(self.bounds)
        while lo < hi:
            mid = (lo + hi) // 2
            if self.bounds[mid] >= value:
                hi = mid
            else:
                lo = mid + 1
        return lo

    def percentile(self, q: float) -> float:
        """The ``q``-quantile (``q`` in [0, 1]) by bucket interpolation."""
        if not 0 <= q <= 1:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return float("nan")
        rank = q * self.count
        cumulative = 0.0
        for i, bucket_count in enumerate(self.counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= rank:
                lower = self.bounds[i - 1] if i > 0 else min(self.minimum, 0.0)
                upper = (
                    self.bounds[i]
                    if i < len(self.bounds)
                    else self.maximum
                )
                fraction = (rank - cumulative) / bucket_count
                value = lower + (upper - lower) * fraction
                return min(max(value, self.minimum), self.maximum)
            cumulative += bucket_count
        return self.maximum

    def summary(self) -> HistogramSummary:
        return HistogramSummary(
            count=self.count,
            total=self.total,
            minimum=self.minimum if self.count else float("nan"),
            maximum=self.maximum if self.count else float("nan"),
            p50=self.percentile(0.50),
            p95=self.percentile(0.95),
            p99=self.percentile(0.99),
        )


@dataclass(frozen=True)
class MetricsSnapshot:
    """Frozen registry state: plain data, JSON round-trippable."""

    counters: dict[MetricKey, float]
    gauges: dict[MetricKey, float]
    histograms: dict[MetricKey, HistogramSummary]

    # -- lookups -------------------------------------------------------

    def counter_value(self, name: str, **labels: object) -> float:
        """The counter's value, 0.0 when it never fired."""
        return self.counters.get((name, label_key(labels)), 0.0)

    def gauge_value(self, name: str, **labels: object) -> float:
        return self.gauges.get((name, label_key(labels)), 0.0)

    def histogram_summary(
        self, name: str, **labels: object
    ) -> HistogramSummary | None:
        return self.histograms.get((name, label_key(labels)))

    def counters_named(self, name: str) -> dict[tuple[tuple[str, str], ...], float]:
        """All label sets of one counter name, e.g. per-decision counts."""
        return {
            labels: value
            for (counter_name, labels), value in self.counters.items()
            if counter_name == name
        }

    # -- serialization -------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "counters": [
                {"name": name, "labels": dict(labels), "value": value}
                for (name, labels), value in sorted(self.counters.items())
            ],
            "gauges": [
                {"name": name, "labels": dict(labels), "value": value}
                for (name, labels), value in sorted(self.gauges.items())
            ],
            "histograms": [
                {
                    "name": name,
                    "labels": dict(labels),
                    **summary.to_dict(),
                }
                for (name, labels), summary in sorted(
                    self.histograms.items()
                )
            ],
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "MetricsSnapshot":
        return cls(
            counters={
                (e["name"], label_key(e["labels"])): float(e["value"])
                for e in data.get("counters", [])
            },
            gauges={
                (e["name"], label_key(e["labels"])): float(e["value"])
                for e in data.get("gauges", [])
            },
            histograms={
                (e["name"], label_key(e["labels"])):
                    HistogramSummary.from_dict(e)
                for e in data.get("histograms", [])
            },
        )


class MetricsRegistry:
    """Get-or-create home of all instruments, keyed by name+labels."""

    def __init__(
        self, default_buckets: Iterable[float] | None = None
    ) -> None:
        self._default_buckets = (
            tuple(default_buckets) if default_buckets is not None else None
        )
        self._counters: dict[MetricKey, Counter] = {}
        self._gauges: dict[MetricKey, Gauge] = {}
        self._histograms: dict[MetricKey, Histogram] = {}

    def counter(self, name: str, **labels: object) -> Counter:
        key = (name, label_key(labels))
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = Counter(name, key[1])
            self._counters[key] = instrument
        return instrument

    def gauge(self, name: str, **labels: object) -> Gauge:
        key = (name, label_key(labels))
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = Gauge(name, key[1])
            self._gauges[key] = instrument
        return instrument

    def histogram(
        self,
        name: str,
        bounds: Iterable[float] | None = None,
        **labels: object,
    ) -> Histogram:
        key = (name, label_key(labels))
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = Histogram(
                name, key[1], bounds=bounds or self._default_buckets
            )
            self._histograms[key] = instrument
        return instrument

    def snapshot(self) -> MetricsSnapshot:
        """Freeze the current state of every instrument."""
        return MetricsSnapshot(
            counters={
                key: c.value for key, c in self._counters.items()
            },
            gauges={key: g.value for key, g in self._gauges.items()},
            histograms={
                key: h.summary() for key, h in self._histograms.items()
            },
        )
