"""Low-overhead sampling wall/CPU profiler with stage attribution.

:class:`SamplingProfiler` runs a daemon thread that wakes every
``interval_s`` and grabs the target thread's current stack via
``sys._current_frames()``.  Each tick accumulates three weights onto
the sampled stack: one *sample*, the wall-clock delta since the last
tick, and the process-CPU delta (``time.process_time()``) since the
last tick — the classic wall/CPU sampling pair, so sleeping stacks
show up in wall time but not CPU time.

Attribution: contextvars cannot be read from another thread, so the
profiled thread publishes what it is doing through a shared
:class:`ActivitySlot` — three plain attribute writes
(``in_request``/``stage``/``trace_id``) the engine performs only while
``telemetry.profiling`` is True.  The sampler reads the slot at each
tick and tags the stack with the active engine stage (``"(other)"``
for in-request time outside any stage, ``"(idle)"`` otherwise) and the
active wire trace id.  Because every in-request sample lands in
exactly one of ``{stage..., "(other)"}``, the per-stage self-time
table sums to 100% of sampled request time *by construction*.

Output formats:

* :meth:`ProfileReport.collapsed_lines` — Brendan-Gregg collapsed
  stacks (``frame;frame;... weight``, root first, hottest first),
  ready for ``flamegraph.pl`` or speedscope; stage-attributed stacks
  get a synthetic ``stage:<name>`` leaf frame;
* :meth:`ProfileReport.stage_table` / :func:`render_stage_table` —
  the per-stage self-time rows;
* :meth:`ProfileReport.to_dict` / :func:`report_from_dict` — the JSON
  form the ``profile`` protocol op ships over the wire.

Everything here is stdlib-only and imports nothing else from
``repro`` — :mod:`repro.obs.config` wires the profiler into the
:class:`~repro.obs.config.Telemetry` facade, not the other way around.
"""

from __future__ import annotations

import sys
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from types import CodeType
from typing import Iterable, Mapping

#: Activity labels for samples outside any engine stage.
OTHER_LABEL = "(other)"
IDLE_LABEL = "(idle)"


class ActivitySlot:
    """What the profiled thread is doing *right now*.

    A tiny mutable beacon shared between the profiled thread (writer)
    and the sampler thread (reader).  Reads and writes are single
    attribute operations — atomic under the GIL — so no lock is
    needed; a torn read across fields merely attributes one 5 ms
    sample to a neighbouring stage.
    """

    __slots__ = ("in_request", "stage", "trace_id")

    def __init__(self) -> None:
        #: True while the engine is processing a service request.
        self.in_request = False
        #: Name of the stage currently in ``handle()``, else None.
        self.stage: str | None = None
        #: Wire trace id of the active request, else None.
        self.trace_id: str | None = None

    def clear(self) -> None:
        self.in_request = False
        self.stage = None
        self.trace_id = None


@dataclass(frozen=True)
class CollapsedStack:
    """One aggregated stack: frames root-first plus its weights."""

    frames: tuple[str, ...]
    #: Engine stage label (``"(idle)"`` / ``"(other)"`` / stage name).
    stage: str
    samples: int
    wall_s: float
    cpu_s: float


@dataclass(frozen=True)
class StageRow:
    """One per-stage self-time row of a profile report."""

    stage: str
    samples: int
    wall_s: float
    cpu_s: float
    #: Share of sampled *request* time; None for the idle row.
    share_pct: float | None


@dataclass(frozen=True)
class TraceRow:
    """Sampled weight attributed to one wire trace id."""

    trace_id: str
    samples: int
    wall_s: float


def _frame_label(code: CodeType) -> str:
    qualname = getattr(code, "co_qualname", code.co_name)
    return f"{Path(code.co_filename).stem}.{qualname}"


class SamplingProfiler:
    """Background sampler over one target thread (see module doc).

    ``slot`` is the :class:`ActivitySlot` the profiled thread writes
    (pass the telemetry's slot for stage/trace attribution, or None
    for plain stack profiling).  ``start()`` targets the *calling*
    thread unless ``target_thread_id`` says otherwise.

    The CPU weight is the process-CPU delta between ticks attributed
    to the sampled stack — exact for a single busy thread (the serving
    daemon's dispatch loop), an approximation when other threads burn
    CPU concurrently.

    While the capture runs, the interpreter's thread switch interval
    is clamped to half the sampling interval (restored on
    :meth:`stop`).  Without this the sampler thread wins the GIL
    almost exclusively when the target thread *blocks* — so every
    sample of a server handling sub-millisecond requests would land
    in ``"(idle)"`` and the stage table would be empty.  Half keeps
    at least one forced handover inside every sample period while
    staying as close to the interpreter default as the sampling rate
    allows — at 10 ms sampling the clamp is a no-op, so continuous
    production profiling perturbs nothing but the sampler thread
    itself.
    """

    def __init__(
        self,
        slot: ActivitySlot | None = None,
        interval_s: float = 0.005,
        max_depth: int = 48,
        target_thread_id: int | None = None,
    ) -> None:
        if interval_s <= 0:
            raise ValueError(
                f"interval_s must be positive, got {interval_s}"
            )
        if max_depth < 1:
            raise ValueError(
                f"max_depth must be >= 1, got {max_depth}"
            )
        self.slot = slot
        self.interval_s = interval_s
        self.max_depth = max_depth
        self._target = target_thread_id
        self._thread: threading.Thread | None = None
        self._stop_event = threading.Event()
        self._lock = threading.Lock()
        self._started = False
        #: (code objects root-first, activity label) -> [n, wall, cpu]
        self._stacks: dict[
            tuple[tuple[CodeType, ...], str], list[float]
        ] = {}
        #: trace_id -> [samples, wall_s]
        self._traces: dict[str, list[float]] = {}
        self._samples = 0
        self._started_at = 0.0
        self._stopped_at: float | None = None
        self._saved_switch_interval: float | None = None

    # -- lifecycle -----------------------------------------------------

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    @property
    def sample_count(self) -> int:
        return self._samples

    @property
    def duration_s(self) -> float:
        if not self._started:
            return 0.0
        end = (
            self._stopped_at
            if self._stopped_at is not None
            else time.perf_counter()
        )
        return end - self._started_at

    def start(self) -> "SamplingProfiler":
        """Spawn the sampler; profiles the calling thread by default."""
        if self._started:
            raise RuntimeError(
                "profiler already started; build a new one per capture"
            )
        self._started = True
        if self._target is None:
            self._target = threading.get_ident()
        self._started_at = time.perf_counter()
        # See the class docstring: without a short switch interval the
        # GIL is handed over at blocking calls only, starving the
        # sampler of mid-request ticks.
        self._saved_switch_interval = sys.getswitchinterval()
        sys.setswitchinterval(
            min(
                self._saved_switch_interval,
                max(self.interval_s / 2.0, 1e-4),
            )
        )
        self._thread = threading.Thread(
            target=self._loop, name="repro-obs-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> "ProfileReport":
        """Stop sampling and return the report.  Idempotent."""
        if self._thread is not None:
            self._stop_event.set()
            self._thread.join()
            self._thread = None
            self._stopped_at = time.perf_counter()
        if self._saved_switch_interval is not None:
            sys.setswitchinterval(self._saved_switch_interval)
            self._saved_switch_interval = None
        return self.report()

    # -- the sampler thread --------------------------------------------

    def _loop(self) -> None:
        slot = self.slot
        target = self._target
        max_depth = self.max_depth
        last_wall = time.perf_counter()
        last_cpu = time.process_time()
        while not self._stop_event.wait(self.interval_s):
            now_wall = time.perf_counter()
            now_cpu = time.process_time()
            wall_d = now_wall - last_wall
            cpu_d = now_cpu - last_cpu
            last_wall, last_cpu = now_wall, now_cpu
            frame = sys._current_frames().get(target)
            if frame is None:
                continue
            if slot is not None and slot.in_request:
                label = slot.stage or OTHER_LABEL
                trace_id = slot.trace_id
            else:
                label = IDLE_LABEL
                trace_id = None
            codes: list[CodeType] = []
            depth = 0
            while frame is not None and depth < max_depth:
                codes.append(frame.f_code)
                frame = frame.f_back
                depth += 1
            key = (tuple(reversed(codes)), label)
            with self._lock:
                self._samples += 1
                record = self._stacks.get(key)
                if record is None:
                    self._stacks[key] = [1.0, wall_d, cpu_d]
                else:
                    record[0] += 1.0
                    record[1] += wall_d
                    record[2] += cpu_d
                if trace_id is not None:
                    trace = self._traces.get(trace_id)
                    if trace is None:
                        self._traces[trace_id] = [1.0, wall_d]
                    else:
                        trace[0] += 1.0
                        trace[1] += wall_d

    # -- reporting -----------------------------------------------------

    def report(self, max_traces: int = 64) -> "ProfileReport":
        """Freeze the accumulated samples (safe while running)."""
        with self._lock:
            raw_stacks = {
                key: tuple(value)
                for key, value in self._stacks.items()
            }
            raw_traces = {
                trace_id: tuple(value)
                for trace_id, value in self._traces.items()
            }
            samples = self._samples
        stacks = tuple(
            sorted(
                (
                    CollapsedStack(
                        frames=tuple(
                            _frame_label(code) for code in codes
                        ),
                        stage=label,
                        samples=int(n),
                        wall_s=wall,
                        cpu_s=cpu,
                    )
                    for (codes, label), (n, wall, cpu) in (
                        raw_stacks.items()
                    )
                ),
                key=lambda s: (-s.samples, s.frames, s.stage),
            )
        )
        traces = tuple(
            sorted(
                (
                    TraceRow(
                        trace_id=trace_id,
                        samples=int(n),
                        wall_s=wall,
                    )
                    for trace_id, (n, wall) in raw_traces.items()
                ),
                key=lambda t: (-t.samples, t.trace_id),
            )[:max_traces]
        )
        return ProfileReport(
            interval_s=self.interval_s,
            duration_s=self.duration_s,
            samples=samples,
            stacks=stacks,
            traces=traces,
        )


@dataclass(frozen=True)
class ProfileReport:
    """One frozen profiling capture (in-flight or final)."""

    interval_s: float
    duration_s: float
    #: Ticks that actually captured a frame of the target thread.
    samples: int
    stacks: tuple[CollapsedStack, ...]
    traces: tuple[TraceRow, ...] = ()

    @property
    def request_samples(self) -> int:
        """Samples taken while a request was being processed."""
        return sum(
            s.samples for s in self.stacks if s.stage != IDLE_LABEL
        )

    def collapsed_lines(
        self, weight: str = "samples", limit: int | None = None
    ) -> list[str]:
        """Brendan-Gregg collapsed stacks, hottest first.

        ``weight`` selects the per-line count: ``"samples"`` (tick
        count), ``"wall"``, or ``"cpu"`` (both in microseconds).
        Stage-attributed stacks end in a synthetic ``stage:<name>``
        frame, so a flame graph shows where each stage's self-time
        goes; idle stacks carry no synthetic frame.
        """
        if weight not in ("samples", "wall", "cpu"):
            raise ValueError(
                f"weight must be samples|wall|cpu, got {weight!r}"
            )

        def measure(stack: CollapsedStack) -> int:
            if weight == "samples":
                return stack.samples
            if weight == "wall":
                return int(round(stack.wall_s * 1e6))
            return int(round(stack.cpu_s * 1e6))

        lines: list[str] = []
        ranked = sorted(
            self.stacks, key=lambda s: (-measure(s), s.frames, s.stage)
        )
        if limit is not None:
            ranked = ranked[: max(0, limit)]
        for stack in ranked:
            count = measure(stack)
            if count <= 0:
                continue
            frames = list(stack.frames)
            if stack.stage != IDLE_LABEL:
                frames.append(f"stage:{stack.stage}")
            lines.append(";".join(frames) + f" {count}")
        return lines

    def collapsed(
        self, weight: str = "samples", limit: int | None = None
    ) -> str:
        return "\n".join(self.collapsed_lines(weight, limit))

    def stage_table(self) -> list[StageRow]:
        """Per-stage self-time rows; shares sum to 100% of request time.

        Rows cover every activity label seen in-request (stages plus
        ``"(other)"``), ordered by wall time descending, followed by
        one ``"(idle)"`` row (``share_pct=None``) when idle samples
        exist.  Shares are fractions of total sampled request wall
        time, so they sum to exactly 100 whenever any request sample
        was taken.
        """
        acc: dict[str, list[float]] = {}
        for stack in self.stacks:
            record = acc.setdefault(stack.stage, [0.0, 0.0, 0.0])
            record[0] += stack.samples
            record[1] += stack.wall_s
            record[2] += stack.cpu_s
        idle = acc.pop(IDLE_LABEL, None)
        request_wall = sum(record[1] for record in acc.values())
        rows = [
            StageRow(
                stage=stage,
                samples=int(record[0]),
                wall_s=record[1],
                cpu_s=record[2],
                share_pct=(
                    100.0 * record[1] / request_wall
                    if request_wall > 0
                    else 0.0
                ),
            )
            for stage, record in acc.items()
        ]
        rows.sort(key=lambda r: (-r.wall_s, r.stage))
        if idle is not None:
            rows.append(
                StageRow(
                    stage=IDLE_LABEL,
                    samples=int(idle[0]),
                    wall_s=idle[1],
                    cpu_s=idle[2],
                    share_pct=None,
                )
            )
        return rows

    def to_dict(self) -> dict:
        """JSON form (the ``profile`` op's ``stages`` body)."""
        rows = self.stage_table()
        return {
            "interval_s": self.interval_s,
            "duration_s": self.duration_s,
            "samples": self.samples,
            "request_samples": self.request_samples,
            "rows": [
                {
                    "stage": row.stage,
                    "samples": row.samples,
                    "wall_s": row.wall_s,
                    "cpu_s": row.cpu_s,
                    "share_pct": row.share_pct,
                }
                for row in rows
            ],
            "stacks": [
                {
                    "frames": list(stack.frames),
                    "stage": stack.stage,
                    "samples": stack.samples,
                    "wall_s": stack.wall_s,
                    "cpu_s": stack.cpu_s,
                }
                for stack in self.stacks
            ],
            "traces": [
                {
                    "trace_id": row.trace_id,
                    "samples": row.samples,
                    "wall_s": row.wall_s,
                }
                for row in self.traces
            ],
        }


def report_from_dict(payload: Mapping) -> ProfileReport:
    """Rebuild a :class:`ProfileReport` from :meth:`~ProfileReport.
    to_dict` output (the CLI side of the ``profile`` op)."""
    return ProfileReport(
        interval_s=float(payload["interval_s"]),
        duration_s=float(payload["duration_s"]),
        samples=int(payload["samples"]),
        stacks=tuple(
            CollapsedStack(
                frames=tuple(stack["frames"]),
                stage=str(stack["stage"]),
                samples=int(stack["samples"]),
                wall_s=float(stack["wall_s"]),
                cpu_s=float(stack["cpu_s"]),
            )
            for stack in payload.get("stacks", [])
        ),
        traces=tuple(
            TraceRow(
                trace_id=str(row["trace_id"]),
                samples=int(row["samples"]),
                wall_s=float(row["wall_s"]),
            )
            for row in payload.get("traces", [])
        ),
    )


def render_stage_table(rows: Iterable[StageRow]) -> list[str]:
    """Fixed-width text rendering of a stage self-time table."""
    lines = ["stage            samples   wall ms    cpu ms   share"]
    for row in rows:
        share = (
            f"{row.share_pct:5.1f}%"
            if row.share_pct is not None
            else "     -"
        )
        lines.append(
            f"  {row.stage:<14} {row.samples:7d}  "
            f"{row.wall_s * 1000.0:8.1f}  {row.cpu_s * 1000.0:8.1f}  "
            f"{share}"
        )
    return lines
