"""Fixed-width text rendering of metric snapshots.

Deliberately mirrors the plain style of
:class:`repro.experiments.harness.Table` (this module cannot import it —
``repro.obs`` sits below every other subpackage) so telemetry summaries
diff cleanly next to benchmark tables in captured output.
"""

from __future__ import annotations

from repro.obs.metrics import MetricsSnapshot


def _label_text(labels: tuple[tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    body = ",".join(f"{key}={value}" for key, value in labels)
    return "{" + body + "}"


def _number(value: float) -> str:
    if value != value:  # NaN
        return "nan"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.3f}"


def _section(
    title: str,
    header: list[str],
    rows: list[list[str]],
    name_width: int = 0,
) -> list[str]:
    """One titled section; ``name_width`` pins the label column so the
    counters/gauges/histograms sections align with each other."""
    widths = [
        max(len(header[i]), *(len(row[i]) for row in rows))
        for i in range(len(header))
    ]
    widths[0] = max(widths[0], name_width)
    lines = [title]
    lines.append(
        "  ".join(
            cell.ljust(width) if i == 0 else cell.rjust(width)
            for i, (cell, width) in enumerate(zip(header, widths))
        )
    )
    for row in rows:
        lines.append(
            "  ".join(
                cell.ljust(width) if i == 0 else cell.rjust(width)
                for i, (cell, width) in enumerate(zip(row, widths))
            )
        )
    return lines


def render_summary(
    snapshot: MetricsSnapshot, title: str = "telemetry"
) -> str:
    """The snapshot as a fixed-width telemetry table.

    All three sections (counters, gauges, histograms) share one label
    column width, so metric names line up vertically across sections.
    """
    counter_rows = [
        [f"{name}{_label_text(labels)}", _number(value)]
        for (name, labels), value in sorted(snapshot.counters.items())
    ]
    gauge_rows = [
        [f"{name}{_label_text(labels)}", _number(value)]
        for (name, labels), value in sorted(snapshot.gauges.items())
    ]
    histogram_rows = [
        [
            f"{name}{_label_text(labels)}",
            _number(summary.count),
            _number(summary.mean),
            _number(summary.p50),
            _number(summary.p95),
            _number(summary.p99),
            _number(summary.maximum),
        ]
        for (name, labels), summary in sorted(snapshot.histograms.items())
    ]
    name_width = max(
        (
            len(row[0])
            for rows in (counter_rows, gauge_rows, histogram_rows)
            for row in rows
        ),
        default=0,
    )

    lines = [f"== {title} =="]
    if counter_rows:
        lines += _section(
            "counters", ["name", "value"], counter_rows, name_width
        )
    if gauge_rows:
        lines += _section(
            "gauges", ["name", "value"], gauge_rows, name_width
        )
    if histogram_rows:
        lines += _section(
            "histograms",
            ["name", "count", "mean", "p50", "p95", "p99", "max"],
            histogram_rows,
            name_width,
        )
    if len(lines) == 1:
        lines.append("(no metrics recorded)")
    return "\n".join(lines)
