"""Fixed-width text rendering of metric snapshots.

Deliberately mirrors the plain style of
:class:`repro.experiments.harness.Table` (this module cannot import it —
``repro.obs`` sits below every other subpackage) so telemetry summaries
diff cleanly next to benchmark tables in captured output.
"""

from __future__ import annotations

from repro.obs.metrics import MetricsSnapshot


def _label_text(labels: tuple[tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    body = ",".join(f"{key}={value}" for key, value in labels)
    return "{" + body + "}"


def _number(value: float) -> str:
    if value != value:  # NaN
        return "nan"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.3f}"


def _section(
    title: str, header: list[str], rows: list[list[str]]
) -> list[str]:
    widths = [
        max(len(header[i]), *(len(row[i]) for row in rows))
        for i in range(len(header))
    ]
    lines = [title]
    lines.append(
        "  ".join(
            cell.ljust(width) if i == 0 else cell.rjust(width)
            for i, (cell, width) in enumerate(zip(header, widths))
        )
    )
    for row in rows:
        lines.append(
            "  ".join(
                cell.ljust(width) if i == 0 else cell.rjust(width)
                for i, (cell, width) in enumerate(zip(row, widths))
            )
        )
    return lines


def render_summary(
    snapshot: MetricsSnapshot, title: str = "telemetry"
) -> str:
    """The snapshot as a fixed-width telemetry table."""
    lines = [f"== {title} =="]

    if snapshot.counters:
        rows = [
            [f"{name}{_label_text(labels)}", _number(value)]
            for (name, labels), value in sorted(snapshot.counters.items())
        ]
        lines += _section("counters", ["name", "value"], rows)

    if snapshot.gauges:
        rows = [
            [f"{name}{_label_text(labels)}", _number(value)]
            for (name, labels), value in sorted(snapshot.gauges.items())
        ]
        lines += _section("gauges", ["name", "value"], rows)

    if snapshot.histograms:
        rows = [
            [
                f"{name}{_label_text(labels)}",
                _number(summary.count),
                _number(summary.mean),
                _number(summary.p50),
                _number(summary.p95),
                _number(summary.p99),
                _number(summary.maximum),
            ]
            for (name, labels), summary in sorted(
                snapshot.histograms.items()
            )
        ]
        lines += _section(
            "histograms",
            ["name", "count", "mean", "p50", "p95", "p99", "max"],
            rows,
        )

    if len(lines) == 1:
        lines.append("(no metrics recorded)")
    return "\n".join(lines)
