"""Benchmark regression artifacts (``BENCH_<exp>.json``).

Every benchmark driver under ``benchmarks/`` exports one artifact per
run through :func:`export_bench`: a JSON file holding

* ``metrics`` — the seeded-deterministic numbers of the experiment
  (table cells via :meth:`~repro.experiments.harness.Table.metrics`,
  plus any extra scalars the driver passes).  These are what
  ``tools/bench_gate.py`` compares against the committed baselines;
* ``latency`` — wall-clock summaries (histogram p50/p95/p99 from the
  telemetry snapshot, when one is provided).  Machine-dependent, so
  informational only — never gated;
* ``workload`` — a fingerprint of the workload shape (city seed and
  sizes, downsizing mode).  The gate refuses to compare artifacts with
  mismatched fingerprints instead of reporting bogus regressions;
* ``provenance`` — git SHA, schema version, experiment id.

The comparator half (:func:`compare_artifacts`, :class:`BenchDelta`)
lives here too so ``tools/bench_gate.py`` stays a thin CLI and tests
can exercise the logic directly.
"""

from __future__ import annotations

import json
import math
import os
import subprocess
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping

from repro.obs.metrics import MetricsSnapshot

#: Bumped when the artifact layout changes incompatibly; the gate skips
#: (with a warning) artifacts whose schema it does not understand.
BENCH_SCHEMA_VERSION = 1

#: Default relative tolerance of the gate: a metric regresses when it
#: moved by more than this fraction of the baseline value.
DEFAULT_TOLERANCE = 0.01

#: Values this close to zero are compared by absolute difference
#: instead of the relative tolerance (relative error near 0 explodes).
ABS_EPSILON = 1e-9


def git_sha(repo_root: "Path | str | None" = None) -> str | None:
    """The current commit SHA, or ``None`` outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=repo_root,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if out.returncode != 0:
        return None
    return out.stdout.strip() or None


def latency_summaries(
    snapshot: "MetricsSnapshot | None",
) -> dict[str, dict[str, float]]:
    """Histogram timing summaries of a snapshot, keyed by metric+labels.

    Only ``*_ms``/``*_s`` histograms are timing data; everything else in
    the snapshot (sizes, areas) is workload-determined and belongs in
    ``metrics`` if the driver wants it compared.
    """
    if snapshot is None:
        return {}
    out: dict[str, dict[str, float]] = {}
    for (name, labels), summary in sorted(snapshot.histograms.items()):
        if not (name.endswith("_ms") or name.endswith("_s")):
            continue
        if summary.count == 0:
            # Empty histograms summarize to NaN; nothing to report.
            continue
        key = name
        if labels:
            key += "{" + ",".join(f"{k}={v}" for k, v in labels) + "}"
        out[key] = {
            "count": float(summary.count),
            "mean": summary.mean,
            "p50": summary.p50,
            "p95": summary.p95,
            "p99": summary.p99,
            "max": summary.maximum,
        }
    return out


@dataclass
class BenchArtifact:
    """One exported benchmark run, ready to serialize or compare."""

    experiment: str
    metrics: dict[str, float]
    latency: dict[str, dict[str, float]] = field(default_factory=dict)
    workload: dict[str, object] = field(default_factory=dict)
    git_sha: "str | None" = None
    schema_version: int = BENCH_SCHEMA_VERSION

    def to_dict(self) -> dict:
        return {
            "schema_version": self.schema_version,
            "experiment": self.experiment,
            "git_sha": self.git_sha,
            "workload": dict(self.workload),
            "metrics": dict(self.metrics),
            "latency": {k: dict(v) for k, v in self.latency.items()},
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "BenchArtifact":
        return cls(
            experiment=str(data["experiment"]),
            metrics={
                str(k): float(v)
                for k, v in dict(data.get("metrics", {})).items()
            },
            latency={
                str(k): {str(m): float(x) for m, x in dict(v).items()}
                for k, v in dict(data.get("latency", {})).items()
            },
            workload=dict(data.get("workload", {})),
            git_sha=data.get("git_sha"),
            schema_version=int(
                data.get("schema_version", BENCH_SCHEMA_VERSION)
            ),
        )

    @property
    def filename(self) -> str:
        return f"BENCH_{self.experiment}.json"

    def write(self, directory: "Path | str") -> Path:
        """Serialize to ``<directory>/BENCH_<exp>.json``; return the path."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / self.filename
        with path.open("w", encoding="utf-8") as fh:
            json.dump(
                self.to_dict(),
                fh,
                indent=2,
                sort_keys=True,
                allow_nan=False,
            )
            fh.write("\n")
        return path


def load_bench_artifact(path: "Path | str") -> BenchArtifact:
    """Read one ``BENCH_*.json`` back; raises on malformed files."""
    with Path(path).open("r", encoding="utf-8") as fh:
        return BenchArtifact.from_dict(json.load(fh))


def export_bench(
    experiment: str,
    metrics: Mapping[str, float],
    snapshot: "MetricsSnapshot | None" = None,
    workload: "Mapping[str, object] | None" = None,
    directory: "Path | str | None" = None,
    latency: "Mapping[str, Mapping[str, float]] | None" = None,
) -> "Path | None":
    """Write the artifact for one benchmark run.

    ``directory`` defaults to the ``REPRO_BENCH_DIR`` environment
    variable; when neither is set the export is skipped (returns
    ``None``) so ad-hoc ``pytest benchmarks/`` runs don't litter the
    tree.  NaN/inf metric values are dropped — the artifact must be
    strict JSON and such values are not comparable anyway.  ``latency``
    entries (for timings the driver measured itself, e.g. E9's
    per-store-size query costs) are merged over the snapshot's
    histogram summaries; like those, they are informational, not gated.
    """
    if directory is None:
        directory = os.environ.get("REPRO_BENCH_DIR") or None
    if directory is None:
        return None
    clean = {
        key: float(value)
        for key, value in metrics.items()
        if not (math.isnan(value) or math.isinf(value))
    }
    timings = latency_summaries(snapshot)
    for key, entry in (latency or {}).items():
        timings[str(key)] = {
            str(m): float(v)
            for m, v in entry.items()
            if not (math.isnan(v) or math.isinf(v))
        }
    artifact = BenchArtifact(
        experiment=experiment,
        metrics=clean,
        latency=timings,
        workload=dict(workload or {}),
        git_sha=git_sha(),
    )
    return artifact.write(directory)


# --------------------------------------------------------------------
# Comparator (the logic behind tools/bench_gate.py)
# --------------------------------------------------------------------


@dataclass(frozen=True)
class BenchDelta:
    """One compared metric: baseline vs current, with verdict."""

    metric: str
    baseline: "float | None"
    current: "float | None"
    status: str  # "ok" | "regressed" | "missing" | "added"

    @property
    def rel_change(self) -> float:
        if (
            self.baseline is None
            or self.current is None
            or abs(self.baseline) <= ABS_EPSILON
        ):
            return math.nan
        return (self.current - self.baseline) / abs(self.baseline)

    def describe(self) -> str:
        if self.status == "missing":
            return f"{self.metric}: missing from current run"
        if self.status == "added":
            return f"{self.metric}: new metric (no baseline)"
        rel = self.rel_change
        change = "" if math.isnan(rel) else f" ({rel:+.2%})"
        return (
            f"{self.metric}: baseline={self.baseline:g} "
            f"current={self.current:g}{change}"
        )


@dataclass
class BenchComparison:
    """Outcome of comparing one current artifact to its baseline."""

    experiment: str
    deltas: list[BenchDelta] = field(default_factory=list)
    skipped_reason: "str | None" = None

    @property
    def regressions(self) -> list[BenchDelta]:
        return [
            d for d in self.deltas if d.status in ("regressed", "missing")
        ]

    @property
    def ok(self) -> bool:
        return self.skipped_reason is not None or not self.regressions


def values_match(
    baseline: float, current: float, tolerance: float
) -> bool:
    """Whether ``current`` is within tolerance of ``baseline``.

    Relative comparison except near zero, where the relative error is
    meaningless and an absolute ``ABS_EPSILON`` bound applies.
    """
    if abs(baseline) <= ABS_EPSILON:
        return abs(current - baseline) <= max(ABS_EPSILON, tolerance)
    return abs(current - baseline) <= tolerance * abs(baseline)


def compare_artifacts(
    baseline: BenchArtifact,
    current: BenchArtifact,
    tolerance: float = DEFAULT_TOLERANCE,
) -> BenchComparison:
    """Compare ``current`` against ``baseline`` metric by metric.

    Returns a skipped comparison (never failing) when the schema
    versions or workload fingerprints differ — comparing runs of
    different workloads reports noise, not regressions.
    """
    comparison = BenchComparison(experiment=current.experiment)
    if baseline.schema_version != current.schema_version:
        comparison.skipped_reason = (
            f"schema mismatch: baseline v{baseline.schema_version}, "
            f"current v{current.schema_version}"
        )
        return comparison
    if baseline.workload != current.workload:
        comparison.skipped_reason = (
            f"workload fingerprint mismatch: baseline "
            f"{baseline.workload!r} != current {current.workload!r}"
        )
        return comparison
    for metric in sorted(set(baseline.metrics) | set(current.metrics)):
        base = baseline.metrics.get(metric)
        cur = current.metrics.get(metric)
        if cur is None:
            status = "missing"
        elif base is None:
            status = "added"
        elif values_match(base, cur, tolerance):
            status = "ok"
        else:
            status = "regressed"
        comparison.deltas.append(
            BenchDelta(
                metric=metric, baseline=base, current=cur, status=status
            )
        )
    return comparison
