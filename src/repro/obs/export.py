"""Prometheus text exposition of the metrics registry.

:func:`render_prometheus` turns a live
:class:`~repro.obs.metrics.MetricsRegistry` (or a frozen
:class:`~repro.obs.metrics.MetricsSnapshot`) into the Prometheus text
exposition format, the lingua franca every scraper understands:

* counters are suffixed ``_total``;
* gauges are rendered as-is;
* live histograms export full cumulative ``_bucket{le=...}`` series
  (bounds whose cumulative count does not change are elided — the
  format permits any bucket subset as long as ``le="+Inf"`` closes it),
  plus ``_sum``/``_count``, with OpenMetrics-style trace exemplars
  (``# {trace_id="..."} value``) on buckets that captured one;
* snapshot histograms (which only retain summaries) degrade to the
  summary form: ``{quantile="0.5"}`` samples plus ``_sum``/``_count``.

Metric and label names are sanitized to the ``[a-zA-Z_:][a-zA-Z0-9_:]*``
charset (dots become underscores: ``serve.request_ms`` →
``serve_request_ms``); label values are escaped per the format spec.

:func:`parse_prometheus` is the matching reader used by tests and
``tools/obstop.py`` — it returns every sample as ``(name, labels) →
value`` and raises ``ValueError`` on any malformed line, so a test
parsing the server's ``metrics`` reply genuinely validates the
exposition.  :func:`quantile_from_buckets` recovers percentiles from a
scraped cumulative bucket series (the same in-bucket linear
interpolation the registry itself uses).
"""

from __future__ import annotations

import re
from typing import Mapping, Sequence, Union

from repro.obs.metrics import (
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
)

_NAME_BAD = re.compile(r"[^a-zA-Z0-9_:]")
_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")

_SAMPLE_RE = re.compile(
    r"""^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)
    (?:\{(?P<labels>[^}]*)\})?
    \s+(?P<value>[^\s#]+)
    # optional OpenMetrics exemplar: # {labels} value
    (?:\s+\#\s+\{(?P<exemplar>[^}]*)\}\s+(?P<exemplar_value>\S+))?
    \s*$""",
    re.VERBOSE,
)

_LABEL_RE = re.compile(
    r'(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"'
)

#: ``(name, ((label, value), ...)) -> float`` — one scraped sample.
Samples = dict[tuple[str, tuple[tuple[str, str], ...]], float]


def sanitize_name(name: str) -> str:
    """Map a registry metric name onto the Prometheus charset."""
    cleaned = _NAME_BAD.sub("_", name)
    if not cleaned or not _NAME_OK.match(cleaned):
        cleaned = "_" + cleaned
    return cleaned


def _escape_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_value(value: float) -> str:
    if value != value:
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    return repr(value)


def _labels_text(
    labels: Sequence[tuple[str, str]], extra: str | None = None
) -> str:
    parts = [
        f'{sanitize_name(key)}="{_escape_value(value)}"'
        for key, value in labels
    ]
    if extra is not None:
        parts.append(extra)
    if not parts:
        return ""
    return "{" + ",".join(parts) + "}"


def _render_histogram(
    lines: list[str], name: str, labels, hist: Histogram
) -> None:
    cumulative = 0
    for index, bucket_count in enumerate(hist.counts):
        cumulative += bucket_count
        is_overflow = index >= len(hist.bounds)
        if bucket_count == 0 and not is_overflow:
            continue  # the cumulative series is unchanged: elide
        bound = (
            "+Inf" if is_overflow else _format_value(hist.bounds[index])
        )
        le = 'le="' + bound + '"'
        line = (
            f"{name}_bucket{_labels_text(labels, extra=le)}"
            f" {cumulative}"
        )
        exemplar = hist.exemplars.get(index)
        if exemplar is not None:
            value, trace_id = exemplar
            line += (
                f' # {{trace_id="{_escape_value(trace_id)}"}}'
                f" {_format_value(value)}"
            )
        lines.append(line)
    lines.append(
        f"{name}_sum{_labels_text(labels)} {_format_value(hist.total)}"
    )
    lines.append(f"{name}_count{_labels_text(labels)} {hist.count}")


def render_prometheus(
    source: Union[MetricsRegistry, MetricsSnapshot],
) -> str:
    """Render every instrument as Prometheus text exposition."""
    if isinstance(source, MetricsRegistry):
        snapshot = source.snapshot()
        registry: MetricsRegistry | None = source
    else:
        snapshot = source
        registry = None
    lines: list[str] = []

    for (raw_name, labels), value in sorted(snapshot.counters.items()):
        name = sanitize_name(raw_name) + "_total"
        lines.append(f"# TYPE {name} counter")
        lines.append(
            f"{name}{_labels_text(labels)} {_format_value(value)}"
        )

    for (raw_name, labels), value in sorted(snapshot.gauges.items()):
        name = sanitize_name(raw_name)
        lines.append(f"# TYPE {name} gauge")
        lines.append(
            f"{name}{_labels_text(labels)} {_format_value(value)}"
        )

    for (raw_name, labels), summary in sorted(
        snapshot.histograms.items()
    ):
        name = sanitize_name(raw_name)
        live = (
            registry._histograms.get((raw_name, labels))
            if registry is not None
            else None
        )
        if live is not None:
            lines.append(f"# TYPE {name} histogram")
            _render_histogram(lines, name, labels, live)
        else:
            lines.append(f"# TYPE {name} summary")
            for q, value in (
                ("0.5", summary.p50),
                ("0.95", summary.p95),
                ("0.99", summary.p99),
            ):
                quantile = 'quantile="' + q + '"'
                lines.append(
                    f"{name}{_labels_text(labels, extra=quantile)}"
                    f" {_format_value(value)}"
                )
            lines.append(
                f"{name}_sum{_labels_text(labels)} "
                f"{_format_value(summary.total)}"
            )
            lines.append(
                f"{name}_count{_labels_text(labels)} {summary.count}"
            )
    return "\n".join(lines) + "\n"


def parse_exposition(
    text: str,
) -> tuple[Samples, dict[tuple[str, tuple[tuple[str, str], ...]],
                         tuple[float, str]]]:
    """Parse text exposition, keeping OpenMetrics exemplars.

    Returns ``(samples, exemplars)``: the same ``(name, labels) →
    value`` map :func:`parse_prometheus` yields, plus ``(name,
    labels) → (value, trace_id)`` for every bucket line that carried a
    ``# {trace_id="..."} value`` exemplar — the raw material of the
    fleet-level worst-exemplar merge in :mod:`repro.obs.aggregate`.
    Raises ``ValueError`` on any malformed line.
    """
    samples: Samples = {}
    exemplars: dict[
        tuple[str, tuple[tuple[str, str], ...]], tuple[float, str]
    ] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        match = _SAMPLE_RE.match(stripped)
        if match is None:
            raise ValueError(
                f"line {lineno}: not a valid exposition sample: "
                f"{stripped!r}"
            )
        labels_text = match["labels"] or ""
        labels = tuple(
            (m["key"], m["value"])
            for m in _LABEL_RE.finditer(labels_text)
        )
        raw = match["value"]
        try:
            value = float(raw)
        except ValueError:
            raise ValueError(
                f"line {lineno}: bad sample value {raw!r}"
            ) from None
        key = (match["name"], labels)
        samples[key] = value
        if match["exemplar"] is not None:
            exemplar_labels = dict(
                (m["key"], m["value"])
                for m in _LABEL_RE.finditer(match["exemplar"])
            )
            trace_id = exemplar_labels.get("trace_id")
            if trace_id is not None:
                try:
                    exemplar_value = float(match["exemplar_value"])
                except ValueError:
                    raise ValueError(
                        f"line {lineno}: bad exemplar value "
                        f"{match['exemplar_value']!r}"
                    ) from None
                exemplars[key] = (exemplar_value, trace_id)
    return samples, exemplars


def parse_prometheus(text: str) -> Samples:
    """Parse text exposition back into ``(name, labels) → value``.

    Raises ``ValueError`` on any line that is neither a comment, blank,
    nor a well-formed sample — the strictness the exposition tests
    lean on.  Exemplars are validated but dropped; use
    :func:`parse_exposition` to keep them.
    """
    samples, _exemplars = parse_exposition(text)
    return samples


def quantile_from_buckets(
    buckets: Mapping[float, float], count: float, q: float
) -> float:
    """Percentile from a scraped cumulative ``le → count`` series.

    ``buckets`` maps upper bounds (``+Inf`` included as ``inf``) to
    cumulative counts.  Mirrors the registry's in-bucket linear
    interpolation, so a dashboard recovers the same p50/p99 the server
    itself would report.
    """
    if count <= 0:
        return float("nan")
    rank = q * count
    previous_bound = 0.0
    previous_cum = 0.0
    for bound in sorted(buckets):
        cumulative = buckets[bound]
        if cumulative >= rank:
            in_bucket = cumulative - previous_cum
            if in_bucket <= 0 or bound == float("inf"):
                return previous_bound
            fraction = (rank - previous_cum) / in_bucket
            return previous_bound + (bound - previous_bound) * fraction
        previous_bound = bound if bound != float("inf") else previous_bound
        previous_cum = cumulative
    return previous_bound
