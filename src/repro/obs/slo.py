"""Streaming privacy-SLO monitoring over the telemetry event stream.

The Trusted Server is an *online* decision pipeline, yet Historical
k-anonymity (Definition 8), unlinking churn, QoS cost, and attack
exposure are normally checked post-hoc by replaying the audit trail.
This module closes that gap: :class:`PrivacyMonitor` is a
:class:`~repro.obs.sinks.TelemetrySink` that subscribes to the
anonymizer's per-decision events (``type="ts.decision"``, published via
:meth:`Telemetry.event`) and maintains *while the pipeline runs*:

* **k-attainment** — the fraction of Θ-link-connected request groups
  (one per ``(user, pseudonym, LBQID)``, the scope of the paper's
  guarantee) currently meeting their required k, via an incremental
  form of :func:`repro.metrics.anonymity.historical_k_per_user`:
  contexts accumulate per group as requests stream in, and candidate
  anonymity sets are filtered incrementally while the PHL store is
  unchanged, recomputed when it grew (LT-consistency is monotone in
  the history, so cached intersections would undercount);
* **unlink churn** — pseudonym rotations per minute over the window
  (Section 6.2's "number of possible interruptions of the service");
* **QoS cost** — mean generalized area/duration over the window (the
  Section 6.2 tolerance budget actually being spent);
* **attack exposure** — an incremental
  :class:`~repro.attack.reidentification.HomeIdentificationAttack`-style
  claim rate: the fraction of pseudonyms whose home-hours requests
  revisit one anchor cell often enough to support a phone-book claim
  (optionally checked against a home oracle).

On top sit declarative :class:`SloRule`\\ s — ``"k_attainment >= 0.95
over 2h"``, ``"unlink_rate <= 0.2/min"`` — evaluated on window
roll-over.  Breaches and recoveries are emitted as structured
``slo_alert`` events through the telemetry fan-out (ring buffer, JSONL,
console — the :class:`~repro.obs.sinks.ConsoleSink` renders them as
warnings) and surfaced by ``SimulationReport.summary()``.

Layering: like the rest of ``repro.obs`` this module must not import
the pipeline packages it observes (``repro.core``, ``repro.attack``,
…); it consumes plain event dicts and duck-types the PHL store
(``.histories``, ``.version``).  The only upward imports are the
value-type layers ``repro.geometry`` and ``repro.granularity``.
"""

from __future__ import annotations

import re
from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Sequence

from repro.geometry.region import Interval, Rect, STBox
from repro.granularity.timeline import DAY, HOUR, MINUTE
from repro.obs.sinks import TelemetrySink

#: Hours-of-day windows in which a request is presumed home-anchored
#: (mirrors ``repro.attack.reidentification.HOME_HOURS``).
HOME_HOURS: tuple[tuple[float, float], ...] = ((5.0, 8.5), (17.5, 24.0))

_OPS: dict[str, Callable[[float, float], bool]] = {
    "<=": lambda value, threshold: value <= threshold,
    ">=": lambda value, threshold: value >= threshold,
    "<": lambda value, threshold: value < threshold,
    ">": lambda value, threshold: value > threshold,
    "==": lambda value, threshold: value == threshold,
}

_WINDOW_UNITS = {
    "s": 1.0,
    "sec": 1.0,
    "m": MINUTE,
    "min": MINUTE,
    "h": HOUR,
    "d": DAY,
}

#: Rate thresholds are normalized to the monitor's per-minute basis.
_RATE_UNITS = {"/s": 60.0, "/sec": 60.0, "/min": 1.0, "/h": 1.0 / 60.0}

_RULE_RE = re.compile(
    r"""^\s*
    (?P<metric>[a-zA-Z_][a-zA-Z0-9_.]*)\s*
    (?P<op><=|>=|==|<|>)\s*
    (?P<threshold>[-+]?\d+(?:\.\d+)?(?:[eE][-+]?\d+)?)\s*
    (?P<rate>/s|/sec|/min|/h)?
    (?:\s+over\s+(?P<window>\d+(?:\.\d+)?)\s*(?P<unit>s|sec|min|m|h|d))?
    \s*$""",
    re.VERBOSE,
)


@dataclass(frozen=True)
class SloRule:
    """One declarative service-level objective over a monitor metric.

    ``window_s`` overrides the monitor's default sliding window for
    this rule only; ``None`` inherits it.  Build from text with
    :func:`parse_slo` — ``"k_attainment >= 0.95 over 2h"``.
    """

    metric: str
    op: str
    threshold: float
    window_s: float | None = None

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise ValueError(
                f"unknown comparison {self.op!r}; use one of "
                f"{sorted(_OPS)}"
            )
        if self.window_s is not None and self.window_s <= 0:
            raise ValueError(
                f"rule window must be positive, got {self.window_s}"
            )

    @property
    def name(self) -> str:
        text = f"{self.metric} {self.op} {self.threshold:g}"
        if self.window_s is not None:
            text += f" over {self.window_s:g}s"
        return text

    def check(self, value: float) -> bool:
        """Whether ``value`` satisfies the objective (NaN never does)."""
        if value != value:
            return False
        return _OPS[self.op](value, self.threshold)


def parse_slo(text: str) -> SloRule:
    """Parse ``"metric <op> threshold [/unit] [over N unit]"``.

    Rate suffixes (``/s``, ``/min``, ``/h``) convert the threshold to
    the monitor's per-minute basis, so ``"unlink_rate <= 0.2/min"`` and
    ``"unlink_rate <= 12/h"`` mean the same objective.
    """
    match = _RULE_RE.match(text)
    if match is None:
        raise ValueError(
            f"cannot parse SLO rule {text!r}; expected e.g. "
            "'k_attainment >= 0.95 over 2h' or 'unlink_rate <= 0.2/min'"
        )
    threshold = float(match["threshold"])
    if match["rate"]:
        threshold *= _RATE_UNITS[match["rate"]]
    window_s = None
    if match["window"]:
        window_s = float(match["window"]) * _WINDOW_UNITS[match["unit"]]
    return SloRule(
        metric=match["metric"],
        op=match["op"],
        threshold=threshold,
        window_s=window_s,
    )


@dataclass(frozen=True)
class SloAlert:
    """One SLO state transition (breach or recovery).

    ``exemplar_trace_ids`` — on a breach, the distributed trace ids of
    the most recent decisions inside the violated window (when the
    serving stack propagated them), so "k_attainment breached" comes
    with concrete request trees to pull from the JSONL sink.
    """

    rule: str
    metric: str
    state: str  # "breach" | "recovered"
    value: float
    threshold: float
    t: float
    exemplar_trace_ids: tuple[str, ...] = ()

    def to_event(self) -> dict:
        return {
            "type": "slo_alert",
            "rule": self.rule,
            "metric": self.metric,
            "state": self.state,
            "value": self.value,
            "threshold": self.threshold,
            "t": self.t,
            "exemplar_trace_ids": list(self.exemplar_trace_ids),
        }


@dataclass
class SloStatus:
    """Last evaluated state of one rule."""

    rule: SloRule
    value: float = float("nan")
    ok: bool = True
    breaches: int = 0
    evaluations: int = 0


@dataclass
class _GroupState:
    """Incremental Definition 8 state of one (user, pseudonym, LBQID)
    request group."""

    user_id: int
    required_k: int
    contexts: list[STBox] = field(default_factory=list)
    #: Users other than ``user_id`` whose PHL was LT-consistent with
    #: ``contexts[:filtered]`` at store version ``store_version``.
    candidates: list[int] | None = None
    filtered: int = 0
    store_version: int = -1


def _context_box(bounds: Sequence[float]) -> STBox:
    x_min, y_min, x_max, y_max, t_start, t_end = bounds
    return STBox(Rect(x_min, y_min, x_max, y_max), Interval(t_start, t_end))


def _in_home_hours(t: float) -> bool:
    offset = t % DAY
    return any(lo * HOUR <= offset <= hi * HOUR for lo, hi in HOME_HOURS)


class PrivacyMonitor(TelemetrySink):
    """Online privacy auditor: a sink over the anonymizer event stream.

    Attach to an enabled telemetry pipeline with :meth:`attach` (or
    pass it as one of the ``sinks`` when building :class:`Telemetry`
    by hand and call ``monitor.bind(telemetry)``).  Estimates are
    maintained per event; rules are evaluated every ``eval_every_s``
    of *simulation* time (default: the window length — tumbling
    roll-over), and each evaluation publishes ``slo.*`` gauges so the
    estimates appear in metric snapshots and rendered summaries.

    ``store`` is duck-typed: any object with a ``histories`` mapping
    of user id → PHL (supporting ``lt_consistent_with``) and a
    monotone ``version`` counter works; ``None`` disables the
    historical-k estimate (it reports NaN).
    """

    def __init__(
        self,
        store=None,
        rules: Iterable[SloRule | str] = (),
        window_s: float = 2 * HOUR,
        eval_every_s: float | None = None,
        default_k: int = 2,
        homes: Mapping[int, object] | None = None,
        claim_radius: float = 150.0,
        min_home_requests: int = 2,
        anchor_grid: float = 50.0,
    ) -> None:
        if window_s <= 0:
            raise ValueError(f"window_s must be positive, got {window_s}")
        self.store = store
        self.rules = tuple(
            parse_slo(rule) if isinstance(rule, str) else rule
            for rule in rules
        )
        self.window_s = window_s
        self.eval_every_s = (
            window_s if eval_every_s is None else eval_every_s
        )
        if self.eval_every_s <= 0:
            raise ValueError(
                f"eval_every_s must be positive, got {self.eval_every_s}"
            )
        self.default_k = default_k
        self.homes = dict(homes) if homes else None
        self.claim_radius = claim_radius
        self.min_home_requests = min_home_requests
        self.anchor_grid = anchor_grid

        #: Longest window any rule (or the default) needs; deques are
        #: pruned to it so narrower rule windows can still be computed.
        self._max_window = max(
            [window_s]
            + [r.window_s for r in self.rules if r.window_s is not None]
        )
        self.status: dict[str, SloStatus] = {
            rule.name: SloStatus(rule) for rule in self.rules
        }
        self.alerts: list[SloAlert] = []
        self.events_seen = 0
        self._telemetry = None
        self._now = float("-inf")
        self._next_eval: float | None = None

        # Sliding-window state, all keyed by simulation time.
        self._decisions: deque[tuple[float, str]] = deque()
        self._unlinks: deque[float] = deque()
        self._qos: deque[tuple[float, float, float]] = deque()
        self._group_activity: deque[tuple[float, tuple]] = deque()
        #: Trace ids of recent traced decisions — alert exemplars.
        self._trace_log: deque[tuple[float, str]] = deque()

        # All-time state.
        self.decision_totals: Counter[str] = Counter()
        self.unlink_total = 0
        self.lbqids_matched = 0
        self._groups: dict[tuple, _GroupState] = {}
        self._pseudonyms_seen: set[str] = set()
        #: pseudonym → Counter of home-hours anchor cells.
        self._home_cells: dict[str, Counter] = {}
        #: pseudonym → per-cell running centroid sums (x, y, n).
        self._cell_sums: dict[tuple[str, tuple[int, int]], list[float]] = {}

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------

    def attach(self, telemetry) -> "PrivacyMonitor":
        """Subscribe to ``telemetry``'s fan-out and alert through it."""
        telemetry.attach_sink(self)
        return self.bind(telemetry)

    def bind(self, telemetry) -> "PrivacyMonitor":
        """Use ``telemetry`` for outgoing alerts and ``slo.*`` gauges
        without (re-)attaching this monitor as a sink."""
        self._telemetry = telemetry
        return self

    # ------------------------------------------------------------------
    # sink interface
    # ------------------------------------------------------------------

    def emit(self, event: Mapping[str, object]) -> None:
        if event.get("type") == "ts.decision":
            self._ingest_decision(event)
        elif event.get("type") == "monitor.lbqid_matched":
            self.lbqids_matched += 1

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------

    def _ingest_decision(self, event: Mapping[str, object]) -> None:
        t = float(event["t"])
        decision = str(event["decision"])
        forwarded = bool(event["forwarded"])
        lbqid = event.get("lbqid")
        self.events_seen += 1
        self._now = max(self._now, t)
        if self._next_eval is None:
            self._next_eval = t + self.eval_every_s

        self._decisions.append((t, decision))
        trace_id = event.get("trace_id")
        if trace_id is not None:
            self._trace_log.append((t, str(trace_id)))
        self.decision_totals[decision] += 1
        if event.get("rotated"):
            self._unlinks.append(t)
            self.unlink_total += 1

        context = event.get("context")
        if forwarded and context is not None:
            box = _context_box(context)
            if lbqid is not None:
                self._qos.append(
                    (t, box.rect.area, box.interval.duration)
                )
                self._ingest_group(event, box, t)
            self._ingest_risk(str(event["pseudonym"]), box)

        self._prune(self._now)
        while self._next_eval is not None and self._now >= self._next_eval:
            self.evaluate(self._next_eval)
            self._next_eval += self.eval_every_s

    def _ingest_group(
        self, event: Mapping[str, object], box: STBox, t: float
    ) -> None:
        key = (
            int(event["user_id"]),
            str(event["pseudonym"]),
            str(event["lbqid"]),
        )
        group = self._groups.get(key)
        if group is None:
            group = self._groups[key] = _GroupState(
                user_id=key[0],
                required_k=int(event.get("required_k") or self.default_k),
            )
        else:
            required_k = event.get("required_k")
            if required_k is not None:
                group.required_k = int(required_k)
        group.contexts.append(box)
        self._group_activity.append((t, key))

    def _ingest_risk(self, pseudonym: str, box: STBox) -> None:
        self._pseudonyms_seen.add(pseudonym)
        if not _in_home_hours(box.interval.center):
            return
        center = box.rect.center
        cell = (
            round(center.x / self.anchor_grid),
            round(center.y / self.anchor_grid),
        )
        cells = self._home_cells.get(pseudonym)
        if cells is None:
            cells = self._home_cells[pseudonym] = Counter()
        cells[cell] += 1
        sums = self._cell_sums.get((pseudonym, cell))
        if sums is None:
            self._cell_sums[(pseudonym, cell)] = [center.x, center.y, 1.0]
        else:
            sums[0] += center.x
            sums[1] += center.y
            sums[2] += 1.0

    def _prune(self, now: float) -> None:
        horizon = now - self._max_window
        while self._unlinks and self._unlinks[0] < horizon:
            self._unlinks.popleft()
        for dq in (
            self._decisions,
            self._qos,
            self._group_activity,
            self._trace_log,
        ):
            while dq and dq[0][0] < horizon:
                dq.popleft()

    # ------------------------------------------------------------------
    # estimates
    # ------------------------------------------------------------------

    def achieved_k(self, key: tuple) -> int:
        """Current Definition 8 anonymity of one request group.

        ``1 +`` the number of *other* users LT-consistent with every
        context the group has forwarded so far.  Candidate sets are
        filtered incrementally while the store is unchanged and
        recomputed after it grew (consistency is monotone in the PHL,
        so a user excluded early may qualify later).
        """
        group = self._groups[key]
        if self.store is None:
            raise ValueError("PrivacyMonitor has no PHL store attached")
        histories = self.store.histories
        version = getattr(self.store, "version", None)
        stale = version is None or group.store_version != version
        if group.candidates is None or stale:
            # Stores may offer a vectorized all-users consistency scan
            # (``TrajectoryStore.lt_consistent_users``); fall back to
            # the per-history loop for plain mappings.  Both return
            # candidate ids in history-ingest order.
            fast = getattr(self.store, "lt_consistent_users", None)
            if callable(fast):
                group.candidates = fast(
                    group.contexts, exclude_user=group.user_id
                )
            else:
                group.candidates = [
                    user_id
                    for user_id, history in histories.items()
                    if user_id != group.user_id
                    and history.lt_consistent_with(group.contexts)
                ]
        elif group.filtered < len(group.contexts):
            fresh = group.contexts[group.filtered:]
            group.candidates = [
                user_id
                for user_id in group.candidates
                if histories[user_id].lt_consistent_with(fresh)
            ]
        group.filtered = len(group.contexts)
        if version is not None:
            group.store_version = version
        return 1 + len(group.candidates)

    def historical_k_per_user(self) -> dict[int, int]:
        """Worst-case achieved k per user over all groups seen so far.

        Matches the post-hoc
        :func:`repro.metrics.anonymity.historical_k_per_user` tally
        (default grouping, ``hk_only=False``) when evaluated against
        the same store.
        """
        worst: dict[int, int] = {}
        for key in self._groups:
            achieved = self.achieved_k(key)
            user_id = self._groups[key].user_id
            if user_id not in worst or achieved < worst[user_id]:
                worst[user_id] = achieved
        return worst

    def k_attainment(self, window_s: float | None = None) -> float:
        """Fraction of recently-active groups meeting their required k.

        Vacuously 1.0 with no active groups (nothing is at risk).
        """
        active = self._active_groups(window_s)
        if not active:
            return 1.0
        met = sum(
            1
            for key in active
            if self.achieved_k(key) >= self._groups[key].required_k
        )
        return met / len(active)

    def unlink_rate(self, window_s: float | None = None) -> float:
        """Pseudonym rotations per minute over the window."""
        window = self._window(window_s)
        count = sum(1 for t in self._unlinks if t >= self._now - window)
        return count / (window / MINUTE)

    def mean_area_m2(self, window_s: float | None = None) -> float:
        """Mean generalized context area over the window (NaN if none)."""
        return self._qos_mean(1, window_s)

    def mean_duration_s(self, window_s: float | None = None) -> float:
        """Mean generalized context duration over the window."""
        return self._qos_mean(2, window_s)

    def suppression_rate(self, window_s: float | None = None) -> float:
        """Fraction of windowed requests suppressed."""
        return self._decision_rate({"suppressed"}, window_s)

    def at_risk_rate(self, window_s: float | None = None) -> float:
        """Fraction of windowed requests whose user was notified of
        identification risk (suppressed or forwarded anyway)."""
        return self._decision_rate(
            {"suppressed", "at_risk_forwarded"}, window_s
        )

    def risk_claim_rate(self, window_s: float | None = None) -> float:
        """Fraction of pseudonyms a phone-book attacker could claim.

        A pseudonym is claimable once some home-hours anchor cell has
        accumulated ``min_home_requests`` requests — the
        :class:`HomeIdentificationAttack` precondition — and, when a
        home oracle was provided, the cell's centroid lies within
        ``claim_radius`` of some home.
        """
        if not self._pseudonyms_seen:
            return 0.0
        return len(self.claimable_pseudonyms()) / len(self._pseudonyms_seen)

    def claimable_pseudonyms(self) -> set[str]:
        """Pseudonyms currently exposed to the home-anchor attack."""
        claimable = set()
        for pseudonym, cells in self._home_cells.items():
            cell, count = cells.most_common(1)[0]
            if count < self.min_home_requests:
                continue
            if self.homes is not None:
                x_sum, y_sum, n = self._cell_sums[(pseudonym, cell)]
                if not self._near_home(x_sum / n, y_sum / n):
                    continue
            claimable.add(pseudonym)
        return claimable

    def _near_home(self, x: float, y: float) -> bool:
        radius_sq = self.claim_radius**2
        return any(
            (home.x - x) ** 2 + (home.y - y) ** 2 <= radius_sq
            for home in self.homes.values()
        )

    def estimates(self, window_s: float | None = None) -> dict[str, float]:
        """All window estimates as one name → value mapping."""
        values = {
            "k_attainment": (
                self.k_attainment(window_s)
                if self.store is not None
                else float("nan")
            ),
            "unlink_rate": self.unlink_rate(window_s),
            "mean_area_m2": self.mean_area_m2(window_s),
            "mean_duration_s": self.mean_duration_s(window_s),
            "suppression_rate": self.suppression_rate(window_s),
            "at_risk_rate": self.at_risk_rate(window_s),
            "risk_claim_rate": self.risk_claim_rate(window_s),
        }
        return values

    #: The metric names rules may reference.
    METRICS = (
        "k_attainment",
        "unlink_rate",
        "mean_area_m2",
        "mean_duration_s",
        "suppression_rate",
        "at_risk_rate",
        "risk_claim_rate",
    )

    def metric_value(
        self, metric: str, window_s: float | None = None
    ) -> float:
        """One named estimate (the lookup the rules use)."""
        if metric not in self.METRICS:
            raise ValueError(
                f"unknown SLO metric {metric!r}; one of "
                f"{sorted(self.METRICS)}"
            )
        return getattr(self, metric)(window_s)

    # ------------------------------------------------------------------
    # rule evaluation
    # ------------------------------------------------------------------

    def evaluate(self, now: float | None = None) -> list[SloAlert]:
        """Evaluate every rule; emit alerts on state transitions.

        Called automatically on window roll-over; call directly for a
        final end-of-run evaluation.  Returns the alerts raised by
        *this* evaluation.  An explicit ``now`` advances event time, so
        the rule windows (and breach exemplars) are anchored at ``now``
        — events older than a window genuinely fall out of it.
        """
        if now is None:
            now = self._now
        else:
            self._now = max(self._now, now)
        raised: list[SloAlert] = []
        for rule in self.rules:
            status = self.status[rule.name]
            value = self.metric_value(rule.metric, rule.window_s)
            ok = rule.check(value)
            status.evaluations += 1
            status.value = value
            if not ok:
                status.breaches += 1
            if ok != status.ok:
                alert = SloAlert(
                    rule=rule.name,
                    metric=rule.metric,
                    state="recovered" if ok else "breach",
                    value=value,
                    threshold=rule.threshold,
                    t=now,
                    exemplar_trace_ids=(
                        ()
                        if ok
                        else self._windowed_traces(rule.window_s)
                    ),
                )
                self.alerts.append(alert)
                raised.append(alert)
            status.ok = ok
        self._publish(now, raised)
        return raised

    def _publish(self, now: float, raised: list[SloAlert]) -> None:
        """Fan alerts out through the pipeline, export ``slo.*`` gauges."""
        telemetry = self._telemetry
        if telemetry is None or not telemetry.enabled:
            return
        for name, value in self.estimates().items():
            if value == value:  # skip NaN gauges
                telemetry.gauge(f"slo.{name}", value)
        for alert in raised:
            telemetry.count("slo.alerts", state=alert.state)
            for sink in telemetry.sinks:
                if sink is not self:
                    sink.emit(alert.to_event())

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------

    def summary_lines(self) -> list[str]:
        """Fixed-width SLO status block for report summaries."""
        lines = ["== privacy SLOs =="]
        if not self.rules:
            lines.append("(no rules configured)")
        width = max((len(name) for name in self.status), default=0)
        for name, status in self.status.items():
            state = "ok" if status.ok else "BREACH"
            lines.append(
                f"  {name.ljust(width)}  {state:7s} "
                f"value={status.value:.4g} "
                f"breaches={status.breaches}/{status.evaluations}"
            )
        if self.alerts:
            lines.append(f"  alerts: {len(self.alerts)}")
            for alert in self.alerts[-5:]:
                lines.append(
                    f"    t={alert.t:.0f} {alert.state}: {alert.rule} "
                    f"(value={alert.value:.4g})"
                )
        return lines

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _window(self, window_s: float | None) -> float:
        return self.window_s if window_s is None else window_s

    def _windowed_traces(
        self, window_s: float | None, limit: int = 5
    ) -> tuple[str, ...]:
        """Most recent distinct trace ids inside the window (≤ limit)."""
        horizon = self._now - self._window(window_s)
        picked: list[str] = []
        for t, trace_id in reversed(self._trace_log):
            if t < horizon:
                break
            if trace_id not in picked:
                picked.append(trace_id)
            if len(picked) >= limit:
                break
        return tuple(picked)

    def _active_groups(self, window_s: float | None) -> set[tuple]:
        horizon = self._now - self._window(window_s)
        return {key for t, key in self._group_activity if t >= horizon}

    def _qos_mean(self, index: int, window_s: float | None) -> float:
        horizon = self._now - self._window(window_s)
        values = [entry[index] for entry in self._qos if entry[0] >= horizon]
        if not values:
            return float("nan")
        return sum(values) / len(values)

    def _decision_rate(
        self, decisions: set[str], window_s: float | None
    ) -> float:
        horizon = self._now - self._window(window_s)
        total = hits = 0
        for t, decision in self._decisions:
            if t < horizon:
                continue
            total += 1
            if decision in decisions:
                hits += 1
        return hits / total if total else 0.0
