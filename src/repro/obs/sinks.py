"""Pluggable destinations for telemetry events.

Every event is a plain JSON-serializable dict with a ``"type"`` key —
``"span"`` records from the tracer and ``"metrics_snapshot"`` dumps from
:meth:`Telemetry.flush`.  Sinks are deliberately dumb pipes: routing,
sampling, or aggregation belongs in whatever consumes them.

* :class:`RingBufferSink` — keeps the last N events in memory; the
  default sink for tests and examples.
* :class:`JsonlSink` — appends one JSON object per line to a file;
  :func:`read_jsonl` reads it back.
* :class:`ConsoleSink` — human-readable one-liners routed through
  ``logging.getLogger("repro.obs")`` at INFO, so library consumers
  control verbosity with standard logging configuration (the package
  installs a ``NullHandler`` — silence by default).
"""

from __future__ import annotations

import json
import logging
from collections import deque
from pathlib import Path
from typing import IO, Iterator, Mapping

logger = logging.getLogger("repro.obs")


class TelemetrySink:
    """Interface: receive events, flush, close.  Base is a null sink."""

    def emit(self, event: Mapping[str, object]) -> None:
        """Receive one telemetry event."""

    def flush(self) -> None:
        """Force any buffered output out."""

    def close(self) -> None:
        """Release resources; the sink must not be emitted to after."""


class RingBufferSink(TelemetrySink):
    """Keep the most recent ``capacity`` events in memory."""

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.events: deque[dict] = deque(maxlen=capacity)

    def emit(self, event: Mapping[str, object]) -> None:
        self.events.append(dict(event))

    def spans(self) -> list[dict]:
        """The buffered span events, oldest first."""
        return [e for e in self.events if e.get("type") == "span"]

    def __len__(self) -> int:
        return len(self.events)


class JsonlSink(TelemetrySink):
    """Append one compact JSON object per event to ``path``.

    ``flush_every`` bounds the data a crash can lose: every N writes the
    sink flushes to the OS, so at most ``N - 1`` events (plus one
    possibly truncated line, which :func:`read_jsonl` tolerates) are at
    risk.  The default 0 flushes only on explicit :meth:`flush`/
    :meth:`close` — fastest, but an abrupt exit loses whatever the
    stdio buffer held.

    ``max_bytes`` enables size-based rotation for long daemon runs:
    once the live file reaches that size it is renamed to
    ``<path>.<n>`` with an increasing suffix (``.1`` oldest) and a
    fresh live file opened, so a traced daemon never grows one
    unbounded file.  The default 0 never rotates.  Rotated segments
    are closed cleanly; only the live file can end in a truncated
    line, and :func:`read_jsonl_rotated` chains all segments back in
    write order with the same per-file tolerance.
    """

    def __init__(
        self,
        path: str | Path,
        flush_every: int = 0,
        max_bytes: int = 0,
    ) -> None:
        if flush_every < 0:
            raise ValueError(
                f"flush_every must be non-negative, got {flush_every}"
            )
        if max_bytes < 0:
            raise ValueError(
                f"max_bytes must be non-negative, got {max_bytes}"
            )
        self.path = Path(path)
        self.flush_every = flush_every
        self.max_bytes = max_bytes
        existing = [
            int(p.suffix[1:]) for p in _rotated_segments(self.path)
        ]
        self._next_suffix = max(existing, default=0) + 1
        self.written = 0
        self.rotations = 0
        self._seal_torn_tail()
        self._file: IO[str] | None = self.path.open("a", encoding="utf-8")
        self._size = (
            self.path.stat().st_size if self.path.exists() else 0
        )

    def _seal_torn_tail(self) -> None:
        """Quarantine a crash-truncated live file before appending.

        A writer that died mid-:meth:`emit` leaves the live file without
        a final newline.  Appending to it would concatenate the next
        record onto the torn one, turning a tolerated segment-final
        truncation into an interior corrupt line that
        :func:`read_jsonl` correctly refuses.  Instead the damaged file
        is rotated aside as its own segment, so the torn record stays
        segment-final (where :func:`read_jsonl_rotated` tolerates it)
        and new writes start a clean live file.
        """
        try:
            with self.path.open("rb") as handle:
                handle.seek(0, 2)
                size = handle.tell()
                if size == 0:
                    return
                handle.seek(-1, 2)
                torn = handle.read(1) != b"\n"
        except FileNotFoundError:
            return
        if torn:
            self.path.rename(
                self.path.with_name(
                    f"{self.path.name}.{self._next_suffix}"
                )
            )
            self._next_suffix += 1
            self.rotations += 1

    def emit(self, event: Mapping[str, object]) -> None:
        if self._file is None:
            raise ValueError(f"JsonlSink({self.path}) is closed")
        # json with ensure_ascii (the default) emits pure ASCII, so
        # character count == byte count and rotation bookkeeping needs
        # no encode pass.
        line = json.dumps(event, separators=(",", ":")) + "\n"
        self._file.write(line)
        self._size += len(line)
        self.written += 1
        if self.flush_every and self.written % self.flush_every == 0:
            self._file.flush()
        if self.max_bytes and self._size >= self.max_bytes:
            self._rotate()

    def _rotate(self) -> None:
        """Close and suffix the live file; open a fresh one."""
        assert self._file is not None
        self._file.close()
        self.path.rename(
            self.path.with_name(f"{self.path.name}.{self._next_suffix}")
        )
        self._next_suffix += 1
        self.rotations += 1
        self._file = self.path.open("a", encoding="utf-8")
        self._size = 0

    def flush(self) -> None:
        if self._file is not None:
            self._file.flush()

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None


class JsonlReadStats:
    """Process-wide tally of corrupt lines :func:`read_jsonl` skipped."""

    __slots__ = ("skipped",)

    def __init__(self) -> None:
        self.skipped = 0


#: Incremented once per truncated/corrupt final line ``read_jsonl``
#: tolerated; tests and operators can watch it to spot crashy writers.
JSONL_READ_STATS = JsonlReadStats()


def read_jsonl(path: str | Path, strict: bool = False) -> Iterator[dict]:
    """Yield the events a :class:`JsonlSink` wrote, in order.

    A writer that died mid-:meth:`~JsonlSink.emit` leaves a truncated
    final line; by default that line is skipped with a logged warning
    (and :data:`JSONL_READ_STATS` incremented) instead of raising, so a
    crashed run's telemetry stays readable.  A corrupt line *before* the
    end is real data corruption and always raises.  ``strict=True``
    raises on any malformed line.
    """
    pending: tuple[int, str] | None = None
    with Path(path).open("r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                # Blank lines never resurrect a pending malformed
                # line: a torn tail followed only by whitespace is
                # still a tolerated tail.
                continue
            if pending is not None:
                # The malformed line was not the last record: real
                # corruption.
                raise ValueError(
                    f"{path}:{pending[0]}: corrupt JSONL line: "
                    f"{pending[1]!r:.80}"
                )
            try:
                yield json.loads(line)
            except ValueError:
                if strict:
                    raise
                pending = (lineno, line)
    if pending is not None:
        JSONL_READ_STATS.skipped += 1
        logger.warning(
            "%s:%d: skipping truncated final JSONL line (%d total "
            "skipped this process)",
            path, pending[0], JSONL_READ_STATS.skipped,
        )


def _rotated_segments(path: Path) -> list[Path]:
    """The rotated ``<path>.<n>`` segments, oldest (lowest n) first."""
    return sorted(
        (
            p
            for p in path.parent.glob(path.name + ".*")
            if p.suffix[1:].isdigit()
        ),
        key=lambda p: int(p.suffix[1:]),
    )


def rotated_paths(path: str | Path) -> list[Path]:
    """Every segment of a (possibly rotated) JSONL sink, write order.

    Rotated segments first (``.1`` oldest), the live file last.  Works
    unchanged for an unrotated sink (one path) and for a sink whose
    live file was rotated away but not yet re-created.
    """
    base = Path(path)
    segments = _rotated_segments(base)
    if base.exists():
        segments.append(base)
    return segments


def read_jsonl_rotated(
    path: str | Path, strict: bool = False
) -> Iterator[dict]:
    """Yield a rotated :class:`JsonlSink`'s events across all segments.

    Chains :func:`read_jsonl` over :func:`rotated_paths`, so events
    come back in write order and *every* segment — rotated or live —
    tolerates a truncated final record (a crashed writer's torn tail
    is sealed into its own rotated segment on restart, see
    :meth:`JsonlSink._seal_torn_tail`, so truncation always lands
    segment-final where this tolerance applies; WAL recovery depends
    on it).  A corrupt line in a segment's interior still raises.
    """
    for segment in rotated_paths(path):
        yield from read_jsonl(segment, strict=strict)


class ConsoleSink(TelemetrySink):
    """One INFO log line per event via the ``repro.obs`` logger."""

    def __init__(self, log: logging.Logger | None = None) -> None:
        self.logger = log or logger

    def emit(self, event: Mapping[str, object]) -> None:
        kind = event.get("type", "event")
        if kind == "span":
            self.logger.info(
                "span %s depth=%s %.3fms %s",
                event.get("name"),
                event.get("depth"),
                event.get("duration_ms", 0.0),
                event.get("attributes") or "",
            )
        elif kind == "metrics_snapshot":
            counters = event.get("counters", [])
            histograms = event.get("histograms", [])
            self.logger.info(
                "metrics snapshot: %d counters, %d histograms",
                len(counters),
                len(histograms),
            )
        elif kind == "slo_alert":
            self.logger.warning(
                "SLO %s: %s (value=%s threshold=%s at t=%s)",
                event.get("state"),
                event.get("rule"),
                event.get("value"),
                event.get("threshold"),
                event.get("t"),
            )
        else:
            self.logger.info("telemetry %s: %s", kind, dict(event))
