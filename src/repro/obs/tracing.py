"""Distributed trace context and nestable spans over the TS pipeline.

A :class:`Tracer` mints :class:`Span`\\ s carrying a full trace context
— ``trace_id`` (one per causal request tree), ``span_id`` (one per
span), and ``parent_id`` (the causal edge) — and propagates the active
span through a :class:`contextvars.ContextVar`, so parent/child links
survive ``await`` points and task hops: a span opened inside an asyncio
task parents under whatever span was active when the task was created.
Remote parents cross process/wire boundaries as a compact
:class:`TraceContext` (``"<trace_id>-<span_id>"`` on the wire), letting
the serving frontend reconstruct one causal tree per TCP request from
any JSONL sink by ``trace_id`` alone.

Spans are timed with :func:`time.perf_counter` (monotonic,
sub-microsecond), never the wall clock, so durations are immune to
clock adjustments.  Finished spans are emitted to the tracer's sinks as
plain dicts (the JSONL sink writes them verbatim); nothing is retained
on the tracer itself, keeping long simulations O(1) in memory unless a
ring buffer sink is attached.

Head sampling: :meth:`Tracer.sample` rolls the tracer's seeded RNG
against ``sample_rate`` — trace *minting* points (the serve client)
call it once per request and simply omit the wire context for unsampled
requests, so every downstream component stays zero-cost for them.

No-sink fast path: with no sink attached a finished span record is
undeliverable, so hot paths may skip span construction entirely and
keep only the trace *identity* flowing — :meth:`Tracer.activate` makes
a wire :class:`TraceContext` the task's active trace without opening a
span, which is all that exemplar recording, decision events, and the
serving introspection ring need.  Attaching a sink restores full span
recording at the next operation; nothing is renegotiated.
"""

from __future__ import annotations

import functools
import itertools
import random
import re
import time
from contextvars import ContextVar, Token
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping

_TRACER_IDS = itertools.count()

_WIRE_RE = re.compile(r"^[0-9a-f]{16}-[0-9a-f]{16}$")

_HEX16 = frozenset("0123456789abcdef")


@dataclass(frozen=True)
class TraceContext:
    """The propagated identity of one causal position in a trace.

    ``trace_id`` names the whole tree; ``span_id`` names the node new
    children should parent under.  The wire form is the 33-character
    ``"<trace_id>-<span_id>"`` (16 lowercase hex chars each).
    """

    trace_id: str
    span_id: str

    def to_wire(self) -> str:
        return f"{self.trace_id}-{self.span_id}"

    @classmethod
    def from_wire(cls, text: str) -> "TraceContext":
        """Parse a wire context; raises ``ValueError`` on any damage."""
        # Hot path (one call per traced frame): a length/charset check
        # beats the regex by ~1us; _WIRE_RE stays the format's spec.
        if len(text) != 33 or text[16] != "-":
            raise ValueError(
                f"malformed trace context {text!r}; expected "
                "'<16 hex>-<16 hex>'"
            )
        trace_id = text[:16]
        span_id = text[17:]
        if not (
            _HEX16.issuperset(trace_id) and _HEX16.issuperset(span_id)
        ):
            raise ValueError(
                f"malformed trace context {text!r}; expected "
                "'<16 hex>-<16 hex>'"
            )
        return cls(trace_id=trace_id, span_id=span_id)


@dataclass(frozen=True)
class SpanRecord:
    """One finished span, as handed to the sinks."""

    name: str
    start: float
    end: float
    depth: int
    parent: str | None
    attributes: Mapping[str, object] = field(default_factory=dict)
    trace_id: str | None = None
    span_id: str | None = None
    parent_id: str | None = None

    @property
    def duration(self) -> float:
        """Seconds between enter and exit."""
        return self.end - self.start

    @property
    def duration_ms(self) -> float:
        return (self.end - self.start) * 1000.0

    def to_dict(self) -> dict:
        return {
            "type": "span",
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "duration_ms": self.duration_ms,
            "depth": self.depth,
            "parent": self.parent,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "attributes": dict(self.attributes),
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "SpanRecord":
        return cls(
            name=str(data["name"]),
            start=float(data["start"]),
            end=float(data["end"]),
            depth=int(data["depth"]),
            parent=data.get("parent"),
            attributes=dict(data.get("attributes", {})),
            trace_id=data.get("trace_id"),
            span_id=data.get("span_id"),
            parent_id=data.get("parent_id"),
        )


class Span:
    """An open span; use via :meth:`Tracer.span` (context manager) or
    :meth:`Tracer.start_span` (detached — finish with :meth:`end`)."""

    __slots__ = (
        "tracer", "name", "attributes", "depth", "parent", "start",
        "end_time", "trace_id", "span_id", "parent_id", "remote",
        "_token", "_record",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        attributes: dict,
        depth: int,
        parent: str | None,
        start: float,
        trace_id: str,
        span_id: str,
        parent_id: str | None,
        remote: bool,
    ) -> None:
        self.tracer = tracer
        self.name = name
        self.attributes = attributes
        self.depth = depth
        self.parent = parent
        self.start = start
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        #: True when this span descends from a wire-propagated
        #: :class:`TraceContext` — the cross-boundary traces the serving
        #: stack reconstructs (local-only spans stay ``False``).
        self.remote = remote
        self._token: "Token | None" = None
        #: perf_counter exit time, set on end (None while open).
        self.end_time: float | None = None
        self._record: SpanRecord | None = None

    @property
    def context(self) -> TraceContext:
        """This span's propagable identity (for wire/child linking)."""
        return TraceContext(trace_id=self.trace_id, span_id=self.span_id)

    @property
    def record(self) -> SpanRecord | None:
        """The finished :class:`SpanRecord` (None while the span is
        open).  Built lazily — the hot path never allocates it."""
        if self._record is None and self.end_time is not None:
            self._record = SpanRecord(
                name=self.name,
                start=self.start,
                end=self.end_time,
                depth=self.depth,
                parent=self.parent,
                attributes=self.attributes,
                trace_id=self.trace_id,
                span_id=self.span_id,
                parent_id=self.parent_id,
            )
        return self._record

    def annotate(self, **attributes: object) -> "Span":
        """Attach attributes to the span (e.g. the decision taken)."""
        self.attributes.update(attributes)
        return self

    def end(self) -> "Span":
        """Finish the span (idempotent); the record flows to the sinks."""
        if self.end_time is None:
            self.tracer._end(self)
        return self

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.attributes.setdefault("error", exc_type.__name__)
        self.end()


class Tracer:
    """Factory of context-linked spans; finished spans flow to sinks.

    ``sample_rate`` drives head sampling at trace mint points (see
    module doc); ``seed`` makes span/trace ids reproducible;
    ``common_attributes`` (e.g. ``{"worker": "w0", "shard": "2"}``)
    are stamped onto every emitted record — the slot the sharded
    serving arc fills without any schema change.
    """

    def __init__(
        self,
        sinks: Iterable = (),
        clock: Callable[[], float] = time.perf_counter,
        sample_rate: float = 1.0,
        seed: int | None = None,
        common_attributes: Mapping[str, object] | None = None,
    ) -> None:
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError(
                f"sample_rate must be in [0, 1], got {sample_rate}"
            )
        self.sinks = tuple(sinks)
        self.clock = clock
        self.sample_rate = sample_rate
        self.common_attributes = dict(common_attributes or {})
        self._rng = random.Random(seed)
        # Holds the active Span, or a bare TraceContext when a wire
        # trace was activated identity-only (the no-sink fast path).
        self._current: "ContextVar[Span | TraceContext | None]" = (
            ContextVar(
                f"repro.obs.span.{next(_TRACER_IDS)}", default=None
            )
        )
        #: Total spans finished over the tracer's lifetime.
        self.finished = 0

    # -- context -------------------------------------------------------

    def current(self) -> Span | None:
        """The span active in the calling task's context, if any.

        Identity-only activations (:meth:`activate`) are not spans and
        return ``None`` here; read them via :meth:`active_trace`.
        """
        span = self._current.get()
        return span if isinstance(span, Span) else None

    def active_trace(self) -> TraceContext | None:
        """The wire-propagated trace this task is inside, if any.

        ``None`` both when no span is open and when the open span is a
        purely local one — exemplar recording keys off this, so local
        simulation spans never pay for trace bookkeeping.
        """
        span = self._current.get()
        if span is None:
            return None
        if isinstance(span, TraceContext):
            return span
        if not span.remote:
            return None
        return TraceContext(trace_id=span.trace_id, span_id=span.span_id)

    def active_trace_id(self) -> str | None:
        """Just the active wire trace's id (exemplar hot path).

        Same nullability as :meth:`active_trace`, without constructing
        a :class:`TraceContext` per call.
        """
        span = self._current.get()
        if span is None:
            return None
        if isinstance(span, TraceContext):
            return span.trace_id
        return span.trace_id if span.remote else None

    @property
    def depth(self) -> int:
        """Number of open spans on the calling task's context chain."""
        span = self._current.get()
        if not isinstance(span, Span):
            return 0
        return span.depth + 1

    def activate(self, context: TraceContext) -> "Token":
        """Make a wire context the task's active trace with no span.

        The no-sink serving fast path: span records could never be
        delivered, but :meth:`active_trace` consumers — histogram
        exemplars, ``ts.decision`` events, the introspection ring —
        still see the propagated identity.  Spans opened while the
        activation is current graft under it exactly as under a
        ``parent=context`` argument.  Balance with :meth:`deactivate`.
        """
        return self._current.set(context)

    def deactivate(self, token: "Token") -> None:
        """Undo one :meth:`activate` (restores the prior context)."""
        self._current.reset(token)

    def sample(self) -> bool:
        """Head-sampling roll for a new trace (True = record it)."""
        if self.sample_rate >= 1.0:
            return True
        if self.sample_rate <= 0.0:
            return False
        return self._rng.random() < self.sample_rate

    def new_id(self) -> str:
        """A fresh 16-hex-char span/trace id."""
        return f"{self._rng.getrandbits(64):016x}"

    def new_wire(self) -> str:
        """A fresh wire context (``"<trace_id>-<span_id>"``) in one
        RNG roll — the no-sink mint fast path."""
        bits = self._rng.getrandbits(128)
        return f"{bits >> 64:016x}-{bits & 0xFFFFFFFFFFFFFFFF:016x}"

    # -- span lifecycle ------------------------------------------------

    def span(
        self,
        name: str,
        parent: TraceContext | None = None,
        **attributes: object,
    ) -> Span:
        """Open a span and make it current; close via ``with`` or
        :meth:`Span.end`.  ``parent`` grafts it under a remote
        (wire-propagated) context instead of the task-local one."""
        span = self._make(name, parent, attributes)
        span._token = self._current.set(span)
        return span

    def start_span(
        self,
        name: str,
        parent: TraceContext | None = None,
        **attributes: object,
    ) -> Span:
        """Open a *detached* span: linked into the tree but never made
        current, so it can outlive the calling task (e.g. a queue-wait
        span ended by the dispatcher).  Finish with :meth:`Span.end`."""
        return self._make(name, parent, attributes)

    def _make(
        self,
        name: str,
        parent: TraceContext | None,
        attributes: dict,
    ) -> Span:
        current = self._current.get()
        if parent is None and isinstance(current, TraceContext):
            # An identity-only activation parents exactly like an
            # explicit remote graft.
            parent = current
        if parent is not None:
            trace_id = parent.trace_id
            parent_id: str | None = parent.span_id
            parent_name = None
            depth = 0
            remote = True
        elif isinstance(current, Span):
            trace_id = current.trace_id
            parent_id = current.span_id
            parent_name = current.name
            depth = current.depth + 1
            remote = current.remote
        else:
            trace_id = self.new_id()
            parent_id = None
            parent_name = None
            depth = 0
            remote = False
        return Span(
            tracer=self,
            name=name,
            attributes=attributes,
            depth=depth,
            parent=parent_name,
            start=self.clock(),
            trace_id=trace_id,
            span_id=self.new_id(),
            parent_id=parent_id,
            remote=remote,
        )

    def emit_span(
        self,
        name: str,
        start: float,
        end: float,
        parent: "Span | TraceContext",
        **attributes: object,
    ) -> None:
        """Emit one already-timed *leaf* span without the full
        :class:`Span` machinery (no object, no contextvar churn).

        The serving hot path uses this for spans that never parent
        other spans — admission, queue wait, engine stages — where the
        caller already holds the start/end clocks.  ``parent`` is
        either the enclosing :class:`Span` (local nesting) or a wire
        :class:`TraceContext` (remote graft).  With no sinks attached
        this is nearly free.
        """
        self.finished += 1
        if not self.sinks:
            return
        if isinstance(parent, Span):
            trace_id = parent.trace_id
            parent_id = parent.span_id
            parent_name: str | None = parent.name
            depth = parent.depth + 1
        else:
            trace_id = parent.trace_id
            parent_id = parent.span_id
            parent_name = None
            depth = 0
        if self.common_attributes:
            attributes = {**self.common_attributes, **attributes}
        event = {
            "type": "span",
            "name": name,
            "start": start,
            "end": end,
            "duration_ms": (end - start) * 1000.0,
            "depth": depth,
            "parent": parent_name,
            "trace_id": trace_id,
            "span_id": self.new_id(),
            "parent_id": parent_id,
            "attributes": attributes,
        }
        for sink in self.sinks:
            sink.emit(event)

    def _end(self, span: Span) -> None:
        end = self.clock()
        if span._token is not None:
            # Restores the context to whatever preceded this span, so a
            # child whose __exit__ was skipped by an exception cannot
            # wedge the chain.
            self._current.reset(span._token)
            span._token = None
        if self.common_attributes:
            span.attributes = {
                **self.common_attributes, **span.attributes
            }
        span.end_time = end
        self.finished += 1
        if self.sinks:
            # Emit the event dict directly — the frozen SpanRecord is
            # only materialized if someone reads ``span.record``.
            event = {
                "type": "span",
                "name": span.name,
                "start": span.start,
                "end": end,
                "duration_ms": (end - span.start) * 1000.0,
                "depth": span.depth,
                "parent": span.parent,
                "trace_id": span.trace_id,
                "span_id": span.span_id,
                "parent_id": span.parent_id,
                "attributes": dict(span.attributes),
            }
            for sink in self.sinks:
                sink.emit(event)

    def wrap(self, name: str | None = None, **attributes: object):
        """Decorator form: trace every call of the wrapped function."""

        def decorator(fn):
            span_name = name or fn.__qualname__

            @functools.wraps(fn)
            def wrapper(*args, **kwargs):
                with self.span(span_name, **attributes):
                    return fn(*args, **kwargs)

            return wrapper

        return decorator
