"""Nestable wall-clock spans over the TS pipeline.

A :class:`Tracer` maintains a stack of open :class:`Span`\\ s; entering a
span while another is open records the parent/child relation and depth,
so a ``ts.request`` span can contain ``store.nearest_users`` child spans
and the sinks see the whole tree.  Spans are timed with
:func:`time.perf_counter` (monotonic, sub-microsecond), never the wall
clock, so durations are immune to clock adjustments.

Finished spans are emitted to the tracer's sinks as plain dicts (the
JSONL sink writes them verbatim); nothing is retained on the tracer
itself, keeping long simulations O(1) in memory unless a ring buffer
sink is attached.
"""

from __future__ import annotations

import functools
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping


@dataclass(frozen=True)
class SpanRecord:
    """One finished span, as handed to the sinks."""

    name: str
    start: float
    end: float
    depth: int
    parent: str | None
    attributes: Mapping[str, object] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Seconds between enter and exit."""
        return self.end - self.start

    @property
    def duration_ms(self) -> float:
        return (self.end - self.start) * 1000.0

    def to_dict(self) -> dict:
        return {
            "type": "span",
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "duration_ms": self.duration_ms,
            "depth": self.depth,
            "parent": self.parent,
            "attributes": dict(self.attributes),
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "SpanRecord":
        return cls(
            name=str(data["name"]),
            start=float(data["start"]),
            end=float(data["end"]),
            depth=int(data["depth"]),
            parent=data.get("parent"),
            attributes=dict(data.get("attributes", {})),
        )


class Span:
    """An open span; use as a context manager via :meth:`Tracer.span`."""

    __slots__ = (
        "tracer", "name", "attributes", "depth", "parent", "start",
        "record",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        attributes: dict,
        depth: int,
        parent: str | None,
        start: float,
    ) -> None:
        self.tracer = tracer
        self.name = name
        self.attributes = attributes
        self.depth = depth
        self.parent = parent
        self.start = start
        #: The finished :class:`SpanRecord`, set on exit.
        self.record: SpanRecord | None = None

    def annotate(self, **attributes: object) -> "Span":
        """Attach attributes to the span (e.g. the decision taken)."""
        self.attributes.update(attributes)
        return self

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.attributes.setdefault("error", exc_type.__name__)
        self.tracer._end(self)


class Tracer:
    """Factory and stack of spans; finished spans flow to the sinks."""

    def __init__(
        self,
        sinks: Iterable = (),
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.sinks = tuple(sinks)
        self.clock = clock
        self._stack: list[Span] = []
        #: Total spans finished over the tracer's lifetime.
        self.finished = 0

    @property
    def depth(self) -> int:
        """Number of currently open spans."""
        return len(self._stack)

    def span(self, name: str, **attributes: object) -> Span:
        """Open a span; close it by exiting the ``with`` block."""
        parent = self._stack[-1].name if self._stack else None
        span = Span(
            tracer=self,
            name=name,
            attributes=dict(attributes),
            depth=len(self._stack),
            parent=parent,
            start=self.clock(),
        )
        self._stack.append(span)
        return span

    def _end(self, span: Span) -> None:
        end = self.clock()
        # Close any children left open (e.g. by an exception skipping
        # their __exit__) so the stack cannot wedge.
        while self._stack and self._stack[-1] is not span:
            self._stack.pop()
        if self._stack:
            self._stack.pop()
        span.record = SpanRecord(
            name=span.name,
            start=span.start,
            end=end,
            depth=span.depth,
            parent=span.parent,
            attributes=span.attributes,
        )
        self.finished += 1
        if self.sinks:
            event = span.record.to_dict()
            for sink in self.sinks:
                sink.emit(event)

    def wrap(self, name: str | None = None, **attributes: object):
        """Decorator form: trace every call of the wrapped function."""

        def decorator(fn):
            span_name = name or fn.__qualname__

            @functools.wraps(fn)
            def wrapper(*args, **kwargs):
                with self.span(span_name, **attributes):
                    return fn(*args, **kwargs)

            return wrapper

        return decorator
