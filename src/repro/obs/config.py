"""The telemetry facade the instrumented components receive.

Components (:class:`~repro.core.anonymizer.TrustedAnonymizer`,
:class:`~repro.mod.store.TrajectoryStore`, …) take a single
``telemetry`` argument and call :class:`Telemetry` methods on the hot
path.  The contract that keeps disabled telemetry free:

* ``telemetry.enabled`` is a plain attribute — instrumented code may
  guard larger blocks with one ``if telemetry.enabled:`` branch;
* every :class:`Telemetry` method itself begins with that same branch
  and returns a shared no-op, so un-guarded calls still cost one branch
  plus one call, never an allocation.

:data:`NULL_TELEMETRY` is the process-wide disabled singleton every
component defaults to; it is never mutated (attaching sinks or
starting a profiler on it is rejected), so sharing it is safe.

:class:`TelemetryConfig` is the user-facing switchboard: declare what
you want (ring buffer, JSONL path, console echo) and :meth:`build` wires
the sinks, registry, and tracer together.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable

from repro.obs.metrics import MetricsRegistry, MetricsSnapshot
from repro.obs.profile import (
    ActivitySlot,
    ProfileReport,
    SamplingProfiler,
)
from repro.obs.sinks import (
    ConsoleSink,
    JsonlSink,
    RingBufferSink,
    TelemetrySink,
)
from repro.obs.tracing import Span, TraceContext, Tracer


class _NullSpan:
    """Shared do-nothing span/timer for the disabled fast path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None

    def annotate(self, **attributes: object) -> "_NullSpan":
        return self

    def end(self) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


class _TimerSpan:
    """Context manager recording its wall time into a histogram (ms)."""

    __slots__ = ("telemetry", "name", "labels", "start")

    def __init__(self, telemetry: "Telemetry", name: str, labels: dict):
        self.telemetry = telemetry
        self.name = name
        self.labels = labels

    def __enter__(self) -> "_TimerSpan":
        self.start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        elapsed_ms = (time.perf_counter() - self.start) * 1000.0
        self.telemetry.metrics.histogram(
            self.name, **self.labels
        ).record(elapsed_ms)


class Telemetry:
    """Tracer + metrics registry + sinks behind one object.

    Build through :meth:`TelemetryConfig.build` (or construct directly
    in tests with explicit sinks).  All recording methods are no-ops
    when ``enabled`` is False.
    """

    def __init__(
        self,
        enabled: bool = True,
        sinks: Iterable[TelemetrySink] = (),
        buckets: Iterable[float] | None = None,
        trace_sample_rate: float = 1.0,
        trace_seed: int | None = None,
        worker: str | None = None,
        shard: str | None = None,
    ) -> None:
        self.enabled = enabled
        self.sinks: tuple[TelemetrySink, ...] = tuple(sinks)
        self.metrics = MetricsRegistry(default_buckets=buckets)
        common: dict[str, object] = {}
        if worker is not None:
            common["worker"] = worker
        if shard is not None:
            common["shard"] = shard
        self.tracer = Tracer(
            sinks=self.sinks,
            sample_rate=trace_sample_rate,
            seed=trace_seed,
            common_attributes=common,
        )
        #: True only while a profiler is attached and running; the
        #: engine guards its activity-slot writes on this plain bool,
        #: so unprofiled requests pay a single branch.  Never True on
        #: the disabled singleton (``start_profiler`` rejects it), so
        #: sharing :data:`NULL_TELEMETRY` stays safe — its slot is
        #: never written.
        self.profiling = False
        #: The beacon the engine writes and the sampler thread reads.
        self.activity = ActivitySlot()
        #: The most recent profiler (running or stopped).
        self.profiler: SamplingProfiler | None = None

    # -- recording (hot path) ------------------------------------------

    def span(
        self,
        name: str,
        parent: TraceContext | None = None,
        **attributes: object,
    ) -> Span | _NullSpan:
        """Open a tracing span (context manager).

        ``parent`` grafts the span under a remote (wire-propagated)
        :class:`TraceContext` instead of the task-local parent.
        """
        if not self.enabled:
            return _NULL_SPAN
        return self.tracer.span(name, parent=parent, **attributes)

    def start_span(
        self,
        name: str,
        parent: TraceContext | None = None,
        **attributes: object,
    ) -> Span | _NullSpan:
        """Open a detached span (finish with ``.end()``); see
        :meth:`Tracer.start_span`."""
        if not self.enabled:
            return _NULL_SPAN
        return self.tracer.start_span(name, parent=parent, **attributes)

    def active_trace(self) -> TraceContext | None:
        """The wire-propagated trace the calling task is inside."""
        if not self.enabled:
            return None
        return self.tracer.active_trace()

    def active_trace_id(self) -> str | None:
        """Just the active wire trace's id (exemplar hot path)."""
        if not self.enabled:
            return None
        return self.tracer.active_trace_id()

    def emit_span(
        self,
        name: str,
        start: float,
        end: float,
        parent: "Span | TraceContext",
        **attributes: object,
    ) -> None:
        """Emit an already-timed leaf span; see
        :meth:`Tracer.emit_span`."""
        if not self.enabled:
            return
        self.tracer.emit_span(name, start, end, parent, **attributes)

    def timer(self, name: str, **labels: object) -> _TimerSpan | _NullSpan:
        """Context manager recording elapsed ms into histogram ``name``."""
        if not self.enabled:
            return _NULL_SPAN
        return _TimerSpan(self, name, labels)

    def event(self, kind: str, /, **fields: object) -> None:
        """Emit one structured event (``type=kind``) to every sink.

        This is the streaming channel the second observability layer
        consumes: the anonymizer publishes per-decision events, the
        LBQID monitors publish match events, and subscribers such as
        :class:`~repro.obs.slo.PrivacyMonitor` receive them in-line
        as sinks.  With no sinks attached nothing is allocated.
        """
        if not self.enabled or not self.sinks:
            return
        payload = {"type": kind, **fields}
        for sink in self.sinks:
            sink.emit(payload)

    def count(
        self, name: str, amount: float = 1.0, **labels: object
    ) -> None:
        """Increment counter ``name`` by ``amount``."""
        if not self.enabled:
            return
        self.metrics.counter(name, **labels).inc(amount)

    def gauge(self, name: str, value: float, **labels: object) -> None:
        """Set gauge ``name`` to ``value``."""
        if not self.enabled:
            return
        self.metrics.gauge(name, **labels).set(value)

    def observe(
        self,
        name: str,
        value: float,
        trace_id: str | None = None,
        **labels: object,
    ) -> None:
        """Record ``value`` into histogram ``name``.

        ``trace_id`` optionally attaches the observation as a bucket
        exemplar — the trace behind the worst value in the bucket's
        current window (see :class:`~repro.obs.metrics.Histogram`).
        """
        if not self.enabled:
            return
        self.metrics.histogram(name, **labels).record(value, trace_id)

    # -- profiling -----------------------------------------------------

    def start_profiler(
        self,
        interval_s: float = 0.005,
        max_depth: int = 48,
    ) -> SamplingProfiler:
        """Start sampling the *calling* thread (the engine's thread).

        Flips :attr:`profiling` so the engine begins publishing its
        activity (current stage, trace id) through :attr:`activity`;
        the sampler thread attributes every tick to it.  One capture
        at a time: starting while a profiler runs raises
        ``RuntimeError``; profiling disabled telemetry raises
        ``ValueError`` (the shared singleton must stay inert).
        """
        if not self.enabled:
            raise ValueError(
                "cannot profile disabled telemetry; build an enabled "
                "Telemetry first"
            )
        if self.profiler is not None and self.profiler.running:
            raise RuntimeError("a profiler is already running")
        profiler = SamplingProfiler(
            slot=self.activity,
            interval_s=interval_s,
            max_depth=max_depth,
        )
        profiler.start()
        self.profiler = profiler
        self.profiling = True
        return profiler

    def stop_profiler(self) -> ProfileReport | None:
        """Stop the running profiler; returns its final report.

        Idempotent: with no profiler attached returns None, with a
        stopped one returns its (unchanged) report.  Clears
        :attr:`profiling` first so the engine stops touching the
        activity slot before the sampler thread is joined.
        """
        self.profiling = False
        self.activity.clear()
        if self.profiler is None:
            return None
        return self.profiler.stop()

    # -- inspection and lifecycle --------------------------------------

    def snapshot(self) -> MetricsSnapshot:
        """Freeze the current metric state."""
        return self.metrics.snapshot()

    def summary(self, title: str = "telemetry") -> str:
        """Fixed-width text rendering of the current snapshot."""
        from repro.obs.render import render_summary

        return render_summary(self.snapshot(), title=title)

    def attach_sink(self, sink: TelemetrySink) -> TelemetrySink:
        """Subscribe one more sink to the event fan-out.

        Spans, metric snapshots, and structured events all start
        flowing to it.  Returns the sink for chaining.  Attaching to
        the disabled singleton is rejected — it is shared process-wide
        and must stay stateless.
        """
        if not self.enabled:
            raise ValueError(
                "cannot attach a sink to disabled telemetry; build an "
                "enabled Telemetry first"
            )
        self.sinks = self.sinks + (sink,)
        self.tracer.sinks = self.sinks
        return sink

    def ring(self) -> RingBufferSink | None:
        """The first attached ring-buffer sink, if any."""
        for sink in self.sinks:
            if isinstance(sink, RingBufferSink):
                return sink
        return None

    def flush(self) -> None:
        """Emit a metrics snapshot event to every sink, then flush them."""
        if not self.enabled:
            return
        event = {"type": "metrics_snapshot", **self.snapshot().to_dict()}
        for sink in self.sinks:
            sink.emit(event)
            sink.flush()

    def close(self) -> None:
        """Flush, then close every sink."""
        self.flush()
        for sink in self.sinks:
            sink.close()


#: The process-wide disabled telemetry every component defaults to.
NULL_TELEMETRY = Telemetry(enabled=False)


@dataclass(frozen=True)
class TelemetryConfig:
    """Declarative telemetry switchboard (disabled by default).

    ``ring_buffer`` keeps the last N span events in memory;
    ``jsonl_path`` appends every event to a JSONL file (flushed every
    ``jsonl_flush_every`` writes — 0 defers to explicit flushes);
    ``console`` echoes events through ``logging.getLogger("repro.obs")``.
    With ``enabled=False`` (the default) :meth:`build` returns the
    shared :data:`NULL_TELEMETRY` no-op.

    ``trace_sample_rate`` is the head-sampling probability applied when
    a new distributed trace is minted (1.0 = trace every request);
    ``trace_seed`` makes trace/span ids reproducible.  ``worker`` and
    ``shard`` are stamped onto every span record — the identity slot
    the sharded multi-worker serving arc fills in.
    """

    enabled: bool = False
    ring_buffer: int = 0
    jsonl_path: str | None = None
    jsonl_flush_every: int = 0
    console: bool = False
    buckets: tuple[float, ...] | None = None
    trace_sample_rate: float = 1.0
    trace_seed: int | None = None
    worker: str | None = None
    shard: str | None = None

    def build(self) -> Telemetry:
        """Wire sinks, registry, and tracer per this configuration."""
        if not self.enabled:
            return NULL_TELEMETRY
        sinks: list[TelemetrySink] = []
        if self.ring_buffer > 0:
            sinks.append(RingBufferSink(self.ring_buffer))
        if self.jsonl_path is not None:
            sinks.append(
                JsonlSink(
                    self.jsonl_path, flush_every=self.jsonl_flush_every
                )
            )
        if self.console:
            sinks.append(ConsoleSink())
        return Telemetry(
            enabled=True,
            sinks=sinks,
            buckets=self.buckets,
            trace_sample_rate=self.trace_sample_rate,
            trace_seed=self.trace_seed,
            worker=self.worker,
            shard=self.shard,
        )


def resolve_telemetry(
    telemetry: "Telemetry | TelemetryConfig | None",
) -> Telemetry:
    """Normalize a constructor argument to a :class:`Telemetry`.

    Components accept ``Telemetry`` (to share one pipeline-wide
    instance), a ``TelemetryConfig`` (built on the spot), or ``None``
    (the disabled singleton).
    """
    if telemetry is None:
        return NULL_TELEMETRY
    if isinstance(telemetry, TelemetryConfig):
        return telemetry.build()
    return telemetry
