"""Mix-zones (paper references [1, 2]; Section 6.3).

"A mix-zone … can be intuitively described as a spatial area such that,
if an individual crosses it, then it won't be possible to link his future
positions (outside the area) with known positions (before entering the
area)."

* :mod:`repro.mixzone.zones` — static geometric mix-zones: crossing
  detection over trajectories, plus the attacker's entry/exit
  re-association game that *measures* the unlinking likelihood Θ a zone
  actually achieves (benchmark E8);
* :mod:`repro.mixzone.on_demand` — the paper's proposal to "define
  mix-zones on-demand": given the request point, find k users nearby with
  *diverging* trajectories; implements the
  :class:`~repro.core.unlinking.UnlinkingProvider` protocol so the
  anonymizer can use it directly.
"""

from repro.mixzone.zones import Crossing, MixZone, reassociation_game
from repro.mixzone.on_demand import OnDemandMixZone

__all__ = [
    "MixZone",
    "Crossing",
    "reassociation_game",
    "OnDemandMixZone",
]
