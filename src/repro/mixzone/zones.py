"""Static geometric mix-zones and the attacker's re-association game.

A :class:`MixZone` is a rectangular area in which no service is available;
users crossing it emerge with fresh pseudonyms.  The privacy it provides
is measured adversarially (after Beresford & Stajano): the attacker sees
anonymized *entry* and *exit* events (where and when someone entered or
left the zone) and tries to re-associate each exit with its entry using
travel-time plausibility.  :func:`reassociation_game` plays that game
optimally (a minimum-cost assignment) and reports the attacker's
accuracy — the empirical upper bound on how *linkable* requests across
the zone remain, i.e. the achieved Θ of the Unlinking action.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import linear_sum_assignment

from repro.core.phl import PersonalHistory
from repro.geometry.point import Point, STPoint
from repro.geometry.region import Rect


@dataclass(frozen=True)
class Crossing:
    """One user's traversal of a mix-zone."""

    user_id: int
    entry: STPoint
    exit: STPoint

    @property
    def dwell_time(self) -> float:
        return self.exit.t - self.entry.t


class MixZone:
    """A rectangular mix-zone."""

    def __init__(self, region: Rect) -> None:
        self.region = region

    def contains(self, point: Point) -> bool:
        return self.region.contains(point)

    def crossings(self, history: PersonalHistory) -> list[Crossing]:
        """All traversals of the zone in one user's trajectory.

        A crossing starts at the first sample inside the zone following a
        sample outside it (or at the trajectory start) and ends at the
        last inside sample before the next outside sample.  Trajectories
        still inside the zone at their end produce no crossing (the
        attacker never saw them leave).
        """
        crossings: list[Crossing] = []
        entry: STPoint | None = None
        last_inside: STPoint | None = None
        for sample in history:
            inside = self.contains(sample.point)
            if inside:
                if entry is None:
                    entry = sample
                last_inside = sample
            elif entry is not None:
                crossings.append(
                    Crossing(history.user_id, entry, last_inside)
                )
                entry = None
                last_inside = None
        return crossings


@dataclass(frozen=True)
class GameResult:
    """Outcome of one re-association game."""

    crossings: int
    correct: int

    @property
    def accuracy(self) -> float:
        """Attacker accuracy; the achieved linkability bound Θ̂."""
        if self.crossings == 0:
            return 0.0
        return self.correct / self.crossings

    @property
    def effective_anonymity(self) -> float:
        """1 / accuracy, clipped: the mixing the zone effectively gave."""
        if self.correct == 0:
            return float(self.crossings)
        return self.crossings / self.correct


def reassociation_game(
    crossings: list[Crossing],
    expected_speed: float = 1.5,
    speed_spread: float = 1.0,
) -> GameResult:
    """Play the optimal entry/exit matching game over a crossing batch.

    The attacker observes the (anonymized) entry events and exit events
    of all crossings in a batch and solves the assignment minimizing the
    implausibility of each pairing: the mismatch between observed transit
    time and the time the entry→exit displacement would take at
    ``expected_speed``, in units of ``speed_spread``-induced slack, with
    impossible pairings (exit before entry) forbidden.

    Returns how many crossings the optimal assignment re-associates
    correctly.  One crossing alone is always re-associated (accuracy 1):
    a mix-zone needs company to mix.
    """
    if not crossings:
        return GameResult(0, 0)
    n = len(crossings)
    big = 1e9
    cost = np.full((n, n), big)
    for i, entry_side in enumerate(crossings):
        for j, exit_side in enumerate(crossings):
            dt = exit_side.exit.t - entry_side.entry.t
            if dt < 0:
                continue
            distance = entry_side.entry.spatial_distance_to(exit_side.exit)
            expected_dt = distance / expected_speed
            slack = 1.0 + distance * speed_spread / expected_speed
            cost[i, j] = abs(dt - expected_dt) / slack
    rows, cols = linear_sum_assignment(cost)
    correct = sum(1 for i, j in zip(rows, cols) if i == j)
    return GameResult(crossings=n, correct=correct)


def batch_crossings_by_time(
    crossings: list[Crossing], batch_window: float
) -> list[list[Crossing]]:
    """Group crossings into attacker batches by entry-time proximity.

    Crossings whose entries are within ``batch_window`` of the batch's
    first entry are mixed together; the attacker plays one game per
    batch.  This models the real constraint that only *temporally
    co-located* traversals provide mixing.
    """
    if batch_window <= 0:
        raise ValueError(
            f"batch_window must be positive, got {batch_window}"
        )
    ordered = sorted(crossings, key=lambda c: c.entry.t)
    batches: list[list[Crossing]] = []
    for crossing in ordered:
        if (
            batches
            and crossing.entry.t - batches[-1][0].entry.t <= batch_window
        ):
            batches[-1].append(crossing)
        else:
            batches.append([crossing])
    return batches


def zone_attack_accuracy(
    zone: MixZone,
    histories: list[PersonalHistory],
    batch_window: float = 900.0,
    expected_speed: float = 1.5,
) -> GameResult:
    """End-to-end zone evaluation: crossings → batches → games → totals."""
    crossings = [
        crossing
        for history in histories
        for crossing in zone.crossings(history)
    ]
    total = 0
    correct = 0
    for batch in batch_crossings_by_time(crossings, batch_window):
        result = reassociation_game(batch, expected_speed=expected_speed)
        total += result.crossings
        correct += result.correct
    return GameResult(crossings=total, correct=correct)
