"""On-demand mix-zones (Section 6.3).

"We are interested in defining mix-zones on-demand, for example
temporarily disabling the use of the service for a number of users in the
same area for the time sufficient to confuse the SP.  Technically, we may
define the problem as that of finding, given a specific point in space, k
diverging trajectories (each one for a different user) that are
sufficiently close to the point."

:class:`OnDemandMixZone` implements exactly that test against the TS's
trajectory store, and doubles as the
:class:`~repro.core.unlinking.UnlinkingProvider` the anonymizer calls
when generalization fails:

* find users whose latest position (within ``staleness``) lies within
  ``radius`` of the request point;
* estimate each one's heading from its last two samples;
* succeed when at least ``k`` users (requester included) are present and
  their headings are *diverging* — spread over at least
  ``min_heading_sectors`` of the compass's four quadrants, capturing "once
  out of the mix-zone, [they] will take very different trajectories".

The achieved Θ reported on success is ``1 / (number of plausible
candidates)`` — the attacker's best per-pair confidence when every
candidate is equally likely to be the continuation.
"""

from __future__ import annotations

import math

from repro.core.phl import PersonalHistory
from repro.core.unlinking import UnlinkOutcome
from repro.geometry.point import STPoint
from repro.mod.store import TrajectoryStore


class OnDemandMixZone:
    """Unlinking provider backed by on-demand mix-zone formation."""

    def __init__(
        self,
        store: TrajectoryStore,
        k: int = 3,
        radius: float = 250.0,
        staleness: float = 900.0,
        min_heading_sectors: int = 2,
    ) -> None:
        if k < 2:
            raise ValueError(f"k must be at least 2 to mix, got {k}")
        if radius <= 0:
            raise ValueError(f"radius must be positive, got {radius}")
        if staleness <= 0:
            raise ValueError(f"staleness must be positive, got {staleness}")
        if not 1 <= min_heading_sectors <= 4:
            raise ValueError("min_heading_sectors must be in 1..4")
        self.store = store
        self.k = k
        self.radius = radius
        self.staleness = staleness
        self.min_heading_sectors = min_heading_sectors
        #: Successful formations, for inspection/metrics.
        self.formations: list[tuple[STPoint, tuple[int, ...]]] = []

    def attempt_unlink(
        self, user_id: int, location: STPoint
    ) -> UnlinkOutcome:
        """Try to form a mix-zone at the request point."""
        candidates = self._candidates_near(location, exclude=user_id)
        if len(candidates) < self.k - 1:
            return UnlinkOutcome(success=False)
        headings = [
            heading
            for heading in (
                self._heading_of(candidate, location.t)
                for candidate in candidates
            )
            if heading is not None
        ]
        sectors = {self._sector(heading) for heading in headings}
        if len(sectors) < self.min_heading_sectors:
            return UnlinkOutcome(success=False)
        self.formations.append((location, tuple(candidates)))
        theta = 1.0 / (len(candidates) + 1)
        return UnlinkOutcome(success=True, theta=theta)

    def _candidates_near(
        self, location: STPoint, exclude: int
    ) -> list[int]:
        """Users whose fresh-enough latest sample is within the radius."""
        nearby = []
        for other_id, history in self.store.histories.items():
            if other_id == exclude:
                continue
            latest = self._latest_sample(history, location.t)
            if latest is None:
                continue
            if latest.spatial_distance_to(location) <= self.radius:
                nearby.append(other_id)
        return nearby

    def _latest_sample(
        self, history: PersonalHistory, now: float
    ) -> STPoint | None:
        """Most recent sample at or before ``now``, if fresh enough."""
        recent = history.points_between(now - self.staleness, now)
        return recent[-1] if recent else None

    def _heading_of(
        self, user_id: int, now: float
    ) -> float | None:
        """Heading (radians) from the user's last two fresh samples."""
        history = self.store.history(user_id)
        recent = history.points_between(now - self.staleness, now)
        if len(recent) < 2:
            return None
        before, after = recent[-2], recent[-1]
        dx = after.x - before.x
        dy = after.y - before.y
        if dx == 0 and dy == 0:
            return None
        return math.atan2(dy, dx)

    @staticmethod
    def _sector(heading: float) -> int:
        """Compass quadrant (0..3) of a heading."""
        turn = (heading + math.pi) / (2.0 * math.pi)  # 0..1
        return min(3, int(turn * 4.0))
